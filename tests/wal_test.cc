#include "storage/wal.h"

#include <gtest/gtest.h>

#include <memory>

namespace streamrel::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest()
      : disk_(std::make_shared<SimulatedDisk>()),
        wal_(std::make_shared<WriteAheadLog>(disk_)) {}

  std::shared_ptr<SimulatedDisk> disk_;
  std::shared_ptr<WriteAheadLog> wal_;
};

TEST_F(WalTest, AppendAndReplay) {
  WalRecord begin;
  begin.type = WalRecordType::kBegin;
  begin.txn_id = 7;
  ASSERT_TRUE(wal_->Append(begin).ok());

  WalRecord insert;
  insert.type = WalRecordType::kInsert;
  insert.txn_id = 7;
  insert.object_name = "t";
  insert.row = {Value::Int64(1), Value::String("abc")};
  ASSERT_TRUE(wal_->Append(insert).ok());

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn_id = 7;
  commit.int_payload = 12345;
  ASSERT_TRUE(wal_->Append(commit).ok());

  std::vector<WalRecord> replayed;
  ASSERT_TRUE(wal_->Replay([&](const WalRecord& r) {
                    replayed.push_back(r);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0].type, WalRecordType::kBegin);
  EXPECT_EQ(replayed[1].object_name, "t");
  ASSERT_EQ(replayed[1].row.size(), 2u);
  EXPECT_EQ(replayed[1].row[1].AsString(), "abc");
  EXPECT_EQ(replayed[2].int_payload, 12345);
}

TEST_F(WalTest, ChannelProgressAndCheckpoint) {
  WalRecord progress;
  progress.type = WalRecordType::kChannelProgress;
  progress.object_name = "ch";
  progress.int_payload = 60'000'000;
  ASSERT_TRUE(wal_->Append(progress).ok());

  WalRecord checkpoint;
  checkpoint.type = WalRecordType::kCheckpoint;
  checkpoint.object_name = "cq1";
  checkpoint.blob = std::string("\x00\x01\x02", 3);
  ASSERT_TRUE(wal_->Append(checkpoint).ok());

  std::vector<WalRecord> replayed;
  ASSERT_TRUE(wal_->Replay([&](const WalRecord& r) {
                    replayed.push_back(r);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].int_payload, 60'000'000);
  EXPECT_EQ(replayed[1].blob.size(), 3u);
}

TEST_F(WalTest, SyncChargesOnlyPendingBytes) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  ASSERT_TRUE(wal_->Append(r).ok());
  wal_->Sync();
  int64_t bytes_after_first = disk_->stats().bytes_written;
  EXPECT_GT(bytes_after_first, 0);
  wal_->Sync();  // nothing pending
  EXPECT_EQ(disk_->stats().bytes_written, bytes_after_first);
  ASSERT_TRUE(wal_->Append(r).ok());
  wal_->Sync();
  EXPECT_GT(disk_->stats().bytes_written, bytes_after_first);
}

TEST_F(WalTest, SyncEveryAppendMode) {
  WriteAheadLog eager(disk_, /*sync_every_append=*/true);
  WalRecord r;
  r.type = WalRecordType::kBegin;
  ASSERT_TRUE(eager.Append(r).ok());
  EXPECT_GT(disk_->stats().bytes_written, 0);
}

TEST_F(WalTest, RecordCountAndSize) {
  EXPECT_EQ(wal_->record_count(), 0);
  WalRecord r;
  r.type = WalRecordType::kBegin;
  ASSERT_TRUE(wal_->Append(r).ok());
  ASSERT_TRUE(wal_->Append(r).ok());
  EXPECT_EQ(wal_->record_count(), 2);
  EXPECT_GT(wal_->byte_size(), 0);
}

TEST_F(WalTest, ResetClears) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  ASSERT_TRUE(wal_->Append(r).ok());
  wal_->Reset();
  EXPECT_EQ(wal_->record_count(), 0);
  int n = 0;
  ASSERT_TRUE(wal_->Replay([&](const WalRecord&) {
                    ++n;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(n, 0);
}

TEST_F(WalTest, ReplayCallbackErrorPropagates) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  ASSERT_TRUE(wal_->Append(r).ok());
  Status s = wal_->Replay(
      [](const WalRecord&) { return Status::Internal("stop"); });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST_F(WalTest, SimulateCrashDropsUnsyncedTail) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = 1;
  ASSERT_TRUE(wal_->Append(r).ok());
  ASSERT_TRUE(wal_->Sync().ok());
  r.txn_id = 2;
  ASSERT_TRUE(wal_->Append(r).ok());
  r.txn_id = 3;
  ASSERT_TRUE(wal_->Append(r).ok());

  wal_->SimulateCrash(CrashMode::kClean);

  // Only the synced prefix survives.
  std::vector<uint64_t> txns;
  WalReplayStats stats;
  ASSERT_TRUE(wal_->Replay(
                      [&](const WalRecord& got) {
                        txns.push_back(got.txn_id);
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_EQ(txns[0], 1u);
  EXPECT_EQ(wal_->record_count(), 1);
  EXPECT_FALSE(stats.stopped_at_torn_tail);
  EXPECT_FALSE(stats.stopped_at_corrupt_tail);
}

TEST_F(WalTest, TornTailEndsReplayCleanly) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = 1;
  ASSERT_TRUE(wal_->Append(r).ok());
  ASSERT_TRUE(wal_->Sync().ok());
  WalRecord insert;
  insert.type = WalRecordType::kInsert;
  insert.txn_id = 2;
  insert.object_name = "t";
  insert.row = {Value::String("unsynced")};
  ASSERT_TRUE(wal_->Append(insert).ok());

  wal_->SimulateCrash(CrashMode::kTornTail);
  EXPECT_GT(wal_->byte_size(), 0);

  int replayed = 0;
  WalReplayStats stats;
  ASSERT_TRUE(wal_->Replay(
                      [&](const WalRecord&) {
                        ++replayed;
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(replayed, 1);  // only the synced record
  EXPECT_TRUE(stats.stopped_at_torn_tail);
  EXPECT_EQ(wal_->torn_tails_seen(), 1);
}

TEST_F(WalTest, CorruptTailEndsReplayCleanly) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = 1;
  ASSERT_TRUE(wal_->Append(r).ok());
  ASSERT_TRUE(wal_->Sync().ok());
  WalRecord insert;
  insert.type = WalRecordType::kInsert;
  insert.txn_id = 2;
  insert.object_name = "t";
  insert.row = {Value::String("unsynced")};
  ASSERT_TRUE(wal_->Append(insert).ok());

  wal_->SimulateCrash(CrashMode::kCorruptTail);

  int replayed = 0;
  WalReplayStats stats;
  ASSERT_TRUE(wal_->Replay(
                      [&](const WalRecord&) {
                        ++replayed;
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(replayed, 1);
  EXPECT_TRUE(stats.stopped_at_corrupt_tail);
  EXPECT_EQ(wal_->corrupt_tails_seen(), 1);
}

TEST_F(WalTest, AppendAfterCrashTruncatesDamagedTail) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  r.txn_id = 1;
  ASSERT_TRUE(wal_->Append(r).ok());
  wal_->SimulateCrash(CrashMode::kTornTail);

  // A recovering system writes over the damaged tail.
  r.txn_id = 2;
  ASSERT_TRUE(wal_->Append(r).ok());
  std::vector<uint64_t> txns;
  WalReplayStats stats;
  ASSERT_TRUE(wal_->Replay(
                      [&](const WalRecord& got) {
                        txns.push_back(got.txn_id);
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  ASSERT_EQ(txns.size(), 1u);
  EXPECT_EQ(txns[0], 2u);
  EXPECT_FALSE(stats.stopped_at_torn_tail);
}

TEST_F(WalTest, CrashWithNothingUnsyncedIsHarmless) {
  WalRecord r;
  r.type = WalRecordType::kBegin;
  ASSERT_TRUE(wal_->Append(r).ok());
  ASSERT_TRUE(wal_->Sync().ok());
  wal_->SimulateCrash(CrashMode::kTornTail);  // no unsynced tail to tear
  int replayed = 0;
  ASSERT_TRUE(wal_->Replay([&](const WalRecord&) {
                    ++replayed;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(replayed, 1);
}

TEST_F(WalTest, RowWithAllValueTypesRoundTrips) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.object_name = "t";
  r.row = {Value::Null(),         Value::Bool(false), Value::Int64(-1),
           Value::Double(2.5),    Value::String(""),  Value::Timestamp(99),
           Value::Interval(-100)};
  ASSERT_TRUE(wal_->Append(r).ok());
  ASSERT_TRUE(wal_->Replay([&](const WalRecord& got) {
                    EXPECT_EQ(got.row.size(), 7u);
                    EXPECT_TRUE(got.row[0].is_null());
                    EXPECT_EQ(got.row[6].AsIntervalMicros(), -100);
                    return Status::OK();
                  })
                  .ok());
}

}  // namespace
}  // namespace streamrel::storage
