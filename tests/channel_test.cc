#include "stream/channel.h"

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

class ChannelTest : public ::testing::Test {
 protected:
  ~ChannelTest() override { FaultInjector::Instance().Reset(); }

  ChannelTest() {
    MustExecute(&db_,
                "CREATE STREAM s (url varchar, ts timestamp CQTIME USER)");
    MustExecute(&db_,
                "CREATE STREAM counts AS SELECT url, count(*) AS c, "
                "cq_close(*) AS w FROM s <VISIBLE '1 minute'> GROUP BY url");
    MustExecute(&db_,
                "CREATE TABLE archive (url varchar, c bigint, w timestamp)");
  }

  void Send(const std::string& url, int64_t ts) {
    ASSERT_TRUE(
        db_.Ingest("s", {Row{Value::String(url), Value::Timestamp(ts)}}).ok());
  }

  engine::Database db_;
};

TEST_F(ChannelTest, AppendModePersistsEveryWindow) {
  MustExecute(&db_, "CREATE CHANNEL ch FROM counts INTO archive APPEND");
  Send("/a", 10 * kSec);
  Send("/a", 70 * kSec);
  Send("/b", 80 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("s", 2 * kMin).ok());

  auto result = MustExecute(&db_, "SELECT url, c, w FROM archive ORDER BY w, url");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].AsString(), "/a");
  EXPECT_EQ(result.rows[0][1].AsInt64(), 1);
  EXPECT_EQ(result.rows[0][2].AsTimestampMicros(), kMin);
  EXPECT_EQ(result.rows[1][2].AsTimestampMicros(), 2 * kMin);
}

TEST_F(ChannelTest, ReplaceModeKeepsOnlyLatestWindow) {
  MustExecute(&db_, "CREATE CHANNEL ch FROM counts INTO archive REPLACE");
  Send("/a", 10 * kSec);
  Send("/b", 70 * kSec);
  Send("/b", 80 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("s", 2 * kMin).ok());

  auto result = MustExecute(&db_, "SELECT url, c FROM archive");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString(), "/b");
  EXPECT_EQ(result.rows[0][1].AsInt64(), 2);
}

TEST_F(ChannelTest, WatermarkAdvancesAndDedupes) {
  MustExecute(&db_, "CREATE CHANNEL ch FROM counts INTO archive APPEND");
  Channel* ch = db_.runtime()->GetChannel("ch");
  ASSERT_NE(ch, nullptr);
  Send("/a", 10 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  EXPECT_EQ(ch->watermark(), kMin);
  EXPECT_EQ(ch->batches_persisted(), 1);
  // Re-delivering an old batch is a no-op.
  ASSERT_TRUE(ch->OnBatch(kMin, {Row{Value::String("/dup"), Value::Int64(9),
                                     Value::Timestamp(kMin)}})
                  .ok());
  EXPECT_EQ(ch->batches_persisted(), 1);
}

TEST_F(ChannelTest, TypeCoercionIntoTableTypes) {
  // Archive column c is bigint; the derived stream's count is bigint too,
  // but build a float-valued derived stream to force a cast.
  MustExecute(&db_,
              "CREATE STREAM avgs AS SELECT avg(1) AS c "
              "FROM s <VISIBLE '1 minute'>");
  MustExecute(&db_, "CREATE TABLE avg_archive (c bigint)");
  MustExecute(&db_, "CREATE CHANNEL ch2 FROM avgs INTO avg_archive APPEND");
  Send("/a", 10 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  auto result = MustExecute(&db_, "SELECT c FROM avg_archive");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].type(), DataType::kInt64);
}

TEST_F(ChannelTest, ChannelWritesGoThroughWal) {
  MustExecute(&db_, "CREATE CHANNEL ch FROM counts INTO archive APPEND");
  int64_t records_before = db_.wal()->record_count();
  Send("/a", 10 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  // Begin + insert + progress + commit at least.
  EXPECT_GE(db_.wal()->record_count(), records_before + 4);
}

TEST_F(ChannelTest, RawStreamChannelArchivesRows) {
  MustExecute(&db_, "CREATE TABLE raw_log (url varchar, ts timestamp)");
  MustExecute(&db_, "CREATE CHANNEL raw_ch FROM s INTO raw_log APPEND");
  Send("/a", 10 * kSec);
  Send("/b", 20 * kSec);
  auto result = MustExecute(&db_, "SELECT url FROM raw_log ORDER BY ts");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].AsString(), "/a");
}

TEST_F(ChannelTest, RawChannelWatermarkRestoredOnFailedBatch) {
  MustExecute(&db_, "CREATE TABLE raw_log (url varchar, ts timestamp)");
  MustExecute(&db_, "CREATE CHANNEL raw_ch FROM s INTO raw_log APPEND");
  Channel* ch = db_.runtime()->GetChannel("raw_ch");
  ASSERT_NE(ch, nullptr);
  Send("/a", 10 * kSec);
  ASSERT_EQ(ch->watermark(), 10 * kSec);

  // The next row group fails mid-persist (WAL rejects the write).
  FaultInjector::Instance().Arm("wal.append", FaultPolicy::FailOnce());
  EXPECT_FALSE(
      db_.Ingest("s", {Row{Value::String("/b"), Value::Timestamp(10 * kSec)}})
          .ok());
  // The failure must not leave the watermark regressed below the last
  // durable group: a redelivered batch at the old close would then pass
  // the dedup check and double-apply.
  EXPECT_EQ(ch->watermark(), 10 * kSec);
  ASSERT_TRUE(ch->OnBatch(10 * kSec, {Row{Value::String("/dup"),
                                          Value::Timestamp(10 * kSec)}})
                  .ok());
  auto result = MustExecute(&db_, "SELECT count(*) FROM raw_log");
  EXPECT_EQ(result.rows[0][0].AsInt64(), 1);
}

TEST_F(ChannelTest, ActiveTableIsIndexable) {
  MustExecute(&db_, "CREATE CHANNEL ch FROM counts INTO archive APPEND");
  MustExecute(&db_, "CREATE INDEX archive_url ON archive (url)");
  for (int m = 0; m < 3; ++m) {
    Send("/a", m * kMin + 10 * kSec);
    Send("/b", m * kMin + 20 * kSec);
  }
  ASSERT_TRUE(db_.AdvanceTime("s", 3 * kMin).ok());
  // Index maintained by channel inserts: query via the index.
  auto result =
      MustExecute(&db_, "SELECT c FROM archive WHERE url = '/a'");
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(ChannelTest, ArityMismatchRejectedAtCreate) {
  MustExecute(&db_, "CREATE TABLE narrow (url varchar)");
  auto r = db_.Execute("CREATE CHANNEL bad FROM counts INTO narrow APPEND");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ChannelTest, MissingSourceOrTargetRejected) {
  EXPECT_FALSE(db_.Execute("CREATE CHANNEL c1 FROM ghost INTO archive").ok());
  EXPECT_FALSE(db_.Execute("CREATE CHANNEL c2 FROM counts INTO ghost").ok());
}

TEST_F(ChannelTest, InsertHelperCoercesAndIndexes) {
  MustExecute(&db_, "CREATE TABLE t (a bigint, b varchar)");
  MustExecute(&db_, "CREATE INDEX t_a ON t (a)");
  auto* table = db_.catalog()->GetTable("t");
  storage::TxnId txn = db_.txns()->Begin();
  ASSERT_TRUE(InsertIntoTable(table,
                              {Value::String("42"), Value::String("x")},
                              txn, nullptr)
                  .ok());
  ASSERT_TRUE(db_.txns()->Commit(txn, 0).ok());
  auto result = MustExecute(&db_, "SELECT b FROM t WHERE a = 42");
  EXPECT_EQ(result.rows.size(), 1u);
}

}  // namespace
}  // namespace streamrel::stream
