// UPDATE / DELETE / VACUUM / EXPLAIN and the index nested-loop join.

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel::engine {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

class DmlTest : public ::testing::Test {
 protected:
  DmlTest() {
    MustExecute(&db_, "CREATE TABLE t (k bigint, v varchar)");
    MustExecute(&db_,
                "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), "
                "(4, 'd')");
  }
  Database db_;
};

TEST_F(DmlTest, DeleteWithPredicate) {
  auto r = MustExecute(&db_, "DELETE FROM t WHERE k % 2 = 0");
  EXPECT_EQ(r.message, "DELETE 2");
  auto rows = MustExecute(&db_, "SELECT k FROM t ORDER BY k");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows.rows[1][0].AsInt64(), 3);
}

TEST_F(DmlTest, DeleteAll) {
  MustExecute(&db_, "DELETE FROM t");
  EXPECT_TRUE(MustExecute(&db_, "SELECT k FROM t").rows.empty());
}

TEST_F(DmlTest, DeleteMaintainsIndex) {
  MustExecute(&db_, "CREATE INDEX t_k ON t (k)");
  MustExecute(&db_, "DELETE FROM t WHERE k = 2");
  auto rows = MustExecute(&db_, "SELECT v FROM t WHERE k = 2");
  EXPECT_TRUE(rows.rows.empty());
  auto others = MustExecute(&db_, "SELECT v FROM t WHERE k = 3");
  EXPECT_EQ(others.rows.size(), 1u);
}

TEST_F(DmlTest, UpdateWithSelfReference) {
  auto r = MustExecute(&db_, "UPDATE t SET k = k + 10 WHERE v = 'b'");
  EXPECT_EQ(r.message, "UPDATE 1");
  auto rows = MustExecute(&db_, "SELECT k FROM t WHERE v = 'b'");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].AsInt64(), 12);
}

TEST_F(DmlTest, UpdateMultipleColumnsAllRows) {
  MustExecute(&db_, "UPDATE t SET v = upper(v), k = 0");
  auto rows = MustExecute(&db_, "SELECT DISTINCT k FROM t");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].AsInt64(), 0);
  auto vs = MustExecute(&db_, "SELECT v FROM t ORDER BY v");
  EXPECT_EQ(vs.rows[0][0].AsString(), "A");
}

TEST_F(DmlTest, UpdateUnknownColumnFails) {
  EXPECT_FALSE(db_.Execute("UPDATE t SET ghost = 1").ok());
}

TEST_F(DmlTest, UpdateDeleteSurviveRecovery) {
  MustExecute(&db_, "UPDATE t SET v = 'updated' WHERE k = 1");
  MustExecute(&db_, "DELETE FROM t WHERE k = 4");
  auto expected =
      RowStrings(MustExecute(&db_, "SELECT k, v FROM t ORDER BY k"));

  Database fresh(db_.disk(), db_.wal());
  MustExecute(&fresh, "CREATE TABLE t (k bigint, v varchar)");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto actual =
      RowStrings(MustExecute(&fresh, "SELECT k, v FROM t ORDER BY k"));
  EXPECT_EQ(actual, expected);
}

TEST_F(DmlTest, VacuumReclaimsDeadVersions) {
  MustExecute(&db_, "DELETE FROM t WHERE k > 2");
  EXPECT_EQ(db_.catalog()->GetTable("t")->heap->row_count(), 4u);
  auto r = MustExecute(&db_, "VACUUM t");
  EXPECT_EQ(r.message, "VACUUM 2");
  EXPECT_EQ(db_.catalog()->GetTable("t")->heap->row_count(), 2u);
  // Contents unchanged.
  auto rows = MustExecute(&db_, "SELECT k, v FROM t ORDER BY k");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[1][0].AsInt64(), 2);
}

TEST_F(DmlTest, VacuumRebuildsIndexes) {
  MustExecute(&db_, "CREATE INDEX t_k ON t (k)");
  MustExecute(&db_, "DELETE FROM t WHERE k <= 2");
  MustExecute(&db_, "VACUUM t");
  auto rows = MustExecute(&db_, "SELECT v FROM t WHERE k = 3");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].AsString(), "c");
  EXPECT_TRUE(MustExecute(&db_, "SELECT v FROM t WHERE k = 1").rows.empty());
}

TEST_F(DmlTest, VacuumBarrierKeepsRecoveryConsistent) {
  // Delete, vacuum, then delete again (post-vacuum RowIds): replay must
  // land on identical contents.
  MustExecute(&db_, "DELETE FROM t WHERE k = 2");
  MustExecute(&db_, "VACUUM t");
  MustExecute(&db_, "DELETE FROM t WHERE k = 4");
  MustExecute(&db_, "INSERT INTO t VALUES (9, 'z')");
  auto expected =
      RowStrings(MustExecute(&db_, "SELECT k, v FROM t ORDER BY k"));

  Database fresh(db_.disk(), db_.wal());
  MustExecute(&fresh, "CREATE TABLE t (k bigint, v varchar)");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto actual =
      RowStrings(MustExecute(&fresh, "SELECT k, v FROM t ORDER BY k"));
  EXPECT_EQ(actual, expected);
}

TEST_F(DmlTest, VacuumAfterReplaceChannelChurn) {
  MustExecute(&db_,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>;"
              "CREATE TABLE board (c bigint);"
              "CREATE CHANNEL ch FROM agg INTO board REPLACE");
  for (int m = 0; m < 10; ++m) {
    ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(m),
                                     Value::Timestamp(m * kMin + kSec)}})
                    .ok());
  }
  ASSERT_TRUE(db_.AdvanceTime("s", 10 * kMin).ok());
  // 10 windows x REPLACE: 10 versions, 9 dead.
  EXPECT_EQ(db_.catalog()->GetTable("board")->heap->row_count(), 10u);
  auto r = MustExecute(&db_, "VACUUM board");
  EXPECT_EQ(r.message, "VACUUM 9");
  auto rows = MustExecute(&db_, "SELECT c FROM board");
  ASSERT_EQ(rows.rows.size(), 1u);
}

TEST_F(DmlTest, TransactionCommit) {
  MustExecute(&db_, "BEGIN");
  EXPECT_TRUE(db_.in_transaction());
  MustExecute(&db_, "INSERT INTO t VALUES (100, 'tx')");
  MustExecute(&db_, "UPDATE t SET v = 'tx2' WHERE k = 100");
  // Own writes visible inside the transaction.
  auto inside = MustExecute(&db_, "SELECT v FROM t WHERE k = 100");
  ASSERT_EQ(inside.rows.size(), 1u);
  EXPECT_EQ(inside.rows[0][0].AsString(), "tx2");
  MustExecute(&db_, "COMMIT");
  EXPECT_FALSE(db_.in_transaction());
  auto after = MustExecute(&db_, "SELECT v FROM t WHERE k = 100");
  EXPECT_EQ(after.rows.size(), 1u);
}

TEST_F(DmlTest, TransactionRollback) {
  MustExecute(&db_, "BEGIN TRANSACTION");
  MustExecute(&db_, "DELETE FROM t");
  EXPECT_TRUE(MustExecute(&db_, "SELECT k FROM t").rows.empty());
  MustExecute(&db_, "ROLLBACK");
  // Everything is back.
  EXPECT_EQ(MustExecute(&db_, "SELECT k FROM t").rows.size(), 4u);
}

TEST_F(DmlTest, TransactionStateErrors) {
  EXPECT_FALSE(db_.Execute("COMMIT").ok());
  EXPECT_FALSE(db_.Execute("ROLLBACK").ok());
  MustExecute(&db_, "BEGIN");
  EXPECT_FALSE(db_.Execute("BEGIN").ok());
  EXPECT_FALSE(db_.Execute("VACUUM t").ok());
  MustExecute(&db_, "ROLLBACK");
}

TEST_F(DmlTest, RolledBackTransactionStaysGoneAfterRecovery) {
  MustExecute(&db_, "BEGIN; INSERT INTO t VALUES (99, 'ghost'); ROLLBACK");
  MustExecute(&db_, "BEGIN; INSERT INTO t VALUES (50, 'kept'); COMMIT");
  auto expected =
      RowStrings(MustExecute(&db_, "SELECT k, v FROM t ORDER BY k"));

  Database fresh(db_.disk(), db_.wal());
  MustExecute(&fresh, "CREATE TABLE t (k bigint, v varchar)");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto actual =
      RowStrings(MustExecute(&fresh, "SELECT k, v FROM t ORDER BY k"));
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(
      MustExecute(&fresh, "SELECT count(*) FROM t WHERE v = 'ghost'")
          .rows[0][0]
          .AsInt64(),
      0);
}

TEST_F(DmlTest, UncommittedInvisibleToSnapshotQueriesOutside) {
  // A CQ's window-consistent snapshot must not see the open transaction.
  MustExecute(&db_,
              "CREATE STREAM s (k bigint, ts timestamp CQTIME USER)");
  auto cq = db_.CreateContinuousQuery(
      "join_dim",
      "SELECT s.k, t.v FROM s <VISIBLE '1 minute'>, t WHERE s.k = t.k");
  ASSERT_TRUE(cq.ok());
  streamrel::CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  MustExecute(&db_, "BEGIN");
  MustExecute(&db_, "INSERT INTO t VALUES (42, 'open')");
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(42),
                                   Value::Timestamp(kSec)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  EXPECT_TRUE(cap.batches[0].rows.empty());  // uncommitted row invisible
  MustExecute(&db_, "COMMIT");
}

TEST_F(DmlTest, CreateTableAsSelect) {
  auto r = MustExecute(
      &db_, "CREATE TABLE evens AS SELECT k, upper(v) AS vv FROM t "
            "WHERE k % 2 = 0 ORDER BY k");
  EXPECT_EQ(r.message, "CREATE TABLE AS (2 rows)");
  auto rows = MustExecute(&db_, "SELECT k, vv FROM evens ORDER BY k");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0][1].AsString(), "B");
  // Derived table is a real table: indexable, updatable.
  MustExecute(&db_, "CREATE INDEX evens_k ON evens (k)");
  MustExecute(&db_, "UPDATE evens SET vv = 'X' WHERE k = 2");
}

TEST_F(DmlTest, CreateTableAsAggregate) {
  MustExecute(&db_,
              "CREATE TABLE summary AS SELECT count(*) AS n, min(k) AS lo, "
              "max(k) AS hi FROM t");
  auto rows = MustExecute(&db_, "SELECT n, lo, hi FROM summary");
  EXPECT_EQ(RowToString(rows.rows[0]), "(4, 1, 4)");
}

TEST_F(DmlTest, CreateTableAsRejectedInTransaction) {
  MustExecute(&db_, "BEGIN");
  EXPECT_FALSE(db_.Execute("CREATE TABLE c AS SELECT k FROM t").ok());
  MustExecute(&db_, "ROLLBACK");
}

TEST_F(DmlTest, NowFunctionTracksLogicalClock) {
  db_.SetClock(42'000'000);
  auto r = MustExecute(&db_, "SELECT now()");
  EXPECT_EQ(r.rows[0][0].AsTimestampMicros(), 42'000'000);
  // In a CQ, now() equals the window close.
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db_.CreateContinuousQuery(
      "c", "SELECT count(*), now() FROM s <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  streamrel::CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1),
                                   Value::Timestamp(50'000'000)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("s", 60'000'000).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][1].AsTimestampMicros(), 60'000'000);
  // Aliases: current_timestamp; arity checked.
  EXPECT_TRUE(db_.Execute("SELECT current_timestamp()").ok());
  EXPECT_FALSE(db_.Execute("SELECT now(1)").ok());
}

TEST_F(DmlTest, ExplainShowsPlan) {
  auto r = MustExecute(&db_, "EXPLAIN SELECT k FROM t WHERE k > 1 ORDER BY k");
  ASSERT_FALSE(r.rows.empty());
  std::string all;
  for (const Row& row : r.rows) all += row[0].AsString() + "\n";
  EXPECT_NE(all.find("Sort"), std::string::npos);
  EXPECT_NE(all.find("SeqScan(t, filtered)"), std::string::npos);
}

TEST_F(DmlTest, ExplainMarksContinuousQueries) {
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto r = MustExecute(&db_,
                       "EXPLAIN SELECT count(*) FROM s <VISIBLE '1 minute'>");
  std::string all;
  for (const Row& row : r.rows) all += row[0].AsString() + "\n";
  EXPECT_NE(all.find("continuous query over stream 's'"), std::string::npos);
}

TEST_F(DmlTest, IndexLookupJoinChosenAndCorrect) {
  MustExecute(&db_, "CREATE TABLE big (k bigint, payload varchar)");
  std::string insert = "INSERT INTO big VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", 'p" + std::to_string(i) + "')";
  }
  MustExecute(&db_, insert);
  MustExecute(&db_, "CREATE INDEX big_k ON big (k)");

  auto plan = MustExecute(
      &db_, "EXPLAIN SELECT t.v, big.payload FROM t, big WHERE t.k = big.k");
  std::string all;
  for (const Row& row : plan.rows) all += row[0].AsString() + "\n";
  EXPECT_NE(all.find("IndexLookupJoin(big.k"), std::string::npos);

  auto rows = MustExecute(
      &db_,
      "SELECT t.v, big.payload FROM t, big WHERE t.k = big.k ORDER BY t.k");
  ASSERT_EQ(rows.rows.size(), 4u);
  EXPECT_EQ(rows.rows[0][1].AsString(), "p1");
  EXPECT_EQ(rows.rows[3][1].AsString(), "p4");
}

TEST_F(DmlTest, IndexLookupJoinRespectsMvcc) {
  MustExecute(&db_, "CREATE TABLE dim (k bigint, label varchar)");
  MustExecute(&db_, "INSERT INTO dim VALUES (1, 'one'), (2, 'two')");
  MustExecute(&db_, "CREATE INDEX dim_k ON dim (k)");
  MustExecute(&db_, "DELETE FROM dim WHERE k = 2");
  // The index still holds the dead entry; the join must skip it.
  auto rows = MustExecute(
      &db_, "SELECT t.v, dim.label FROM t, dim WHERE t.k = dim.k");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][1].AsString(), "one");
}

TEST_F(DmlTest, IndexLookupJoinLeftJoinPads) {
  MustExecute(&db_, "CREATE TABLE dim (k bigint, label varchar)");
  MustExecute(&db_, "INSERT INTO dim VALUES (1, 'one')");
  MustExecute(&db_, "CREATE INDEX dim_k ON dim (k)");
  auto rows = MustExecute(
      &db_,
      "SELECT t.k, dim.label FROM t LEFT JOIN dim ON t.k = dim.k "
      "ORDER BY t.k");
  ASSERT_EQ(rows.rows.size(), 4u);
  EXPECT_EQ(rows.rows[0][1].AsString(), "one");
  EXPECT_TRUE(rows.rows[1][1].is_null());
}

TEST_F(DmlTest, StreamTableJoinUsesIndexLookup) {
  MustExecute(&db_,
              "CREATE STREAM s (k bigint, ts timestamp CQTIME USER);"
              "CREATE TABLE dim (k bigint, label varchar)");
  MustExecute(&db_, "INSERT INTO dim VALUES (7, 'seven')");
  MustExecute(&db_, "CREATE INDEX dim_k ON dim (k)");
  auto cq = db_.CreateContinuousQuery(
      "enrich",
      "SELECT s.k, dim.label FROM s <VISIBLE '1 minute'>, dim "
      "WHERE s.k = dim.k");
  ASSERT_TRUE(cq.ok());
  streamrel::CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(7),
                                   Value::Timestamp(kSec)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  ASSERT_EQ(cap.batches[0].rows.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][1].AsString(), "seven");
}

}  // namespace
}  // namespace streamrel::engine
