#!/usr/bin/env bash
# Smoke test for the standalone server: boots streamrel-server on an
# ephemeral port, drives it with the remote-client example over TCP
# (DDL, binary ingest, live SUBSCRIBE pushes, SHOW STATS FOR NET), then
# checks the SIGTERM graceful-drain path exits 0.
set -u
SERVER_BIN="$1"
CLIENT_BIN="$2"
TMP_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP_DIR"
}
trap cleanup EXIT

SERVER_OUT="$TMP_DIR/server.txt"
"$SERVER_BIN" --port 0 > "$SERVER_OUT" 2>&1 &
SERVER_PID=$!

fail() {
  echo "SMOKE FAILURE: $1"
  echo "--- server output ---"; cat "$SERVER_OUT"
  [ -f "$TMP_DIR/client.txt" ] && { echo "--- client output ---"; cat "$TMP_DIR/client.txt"; }
  exit 1
}

# --port 0 binds an ephemeral port and reports it on stdout; scrape it.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^streamrel-server listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "$SERVER_OUT")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never reported its port"

CLIENT_OUT="$TMP_DIR/client.txt"
CLIENT_STATUS=0
"$CLIENT_BIN" --connect 127.0.0.1 "$PORT" > "$CLIENT_OUT" 2>&1 || CLIENT_STATUS=$?
[ "$CLIENT_STATUS" -eq 0 ] || fail "client exited with status $CLIENT_STATUS"
grep -q "subscribed to url_counts" "$CLIENT_OUT" || fail "subscribe missing"
grep -q "window close @60s from 'url_counts'" "$CLIENT_OUT" || fail "first window push missing"
grep -q "window close @180s from 'url_counts'" "$CLIENT_OUT" || fail "third window push missing"
grep -q "(/home, 4)" "$CLIENT_OUT" || fail "window contents wrong"
grep -q "frames.ingest_batch = " "$CLIENT_OUT" || fail "NET stats missing"
grep -q "remote client done" "$CLIENT_OUT" || fail "client did not finish"

# Graceful drain on SIGTERM: the server announces the drain and exits 0.
kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
SERVER_PID=""
[ "$SERVER_STATUS" -eq 0 ] || fail "server drain exited with status $SERVER_STATUS"
grep -q "streamrel-server draining" "$SERVER_OUT" || fail "drain message missing"
echo "server smoke test passed"
