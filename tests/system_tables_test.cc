// sys_* introspection tables: live catalog/runtime state queryable via SQL.

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel::engine {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

class SystemTablesTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(SystemTablesTest, SysTablesListsUserTables) {
  MustExecute(&db_, "CREATE TABLE users (id bigint, name varchar)");
  MustExecute(&db_, "INSERT INTO users VALUES (1, 'a'), (2, 'b')");
  MustExecute(&db_, "CREATE INDEX users_id ON users (id)");
  auto r = MustExecute(
      &db_,
      "SELECT columns, row_versions, indexes FROM sys_tables "
      "WHERE name = 'users'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 2);
  EXPECT_EQ(r.rows[0][2].AsInt64(), 1);
}

TEST_F(SystemTablesTest, SysStreamsShowsKindAndWatermark) {
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  MustExecute(&db_,
              "CREATE STREAM d AS SELECT count(*) FROM s "
              "<VISIBLE '1 minute'>");
  auto before = MustExecute(
      &db_, "SELECT kind, watermark FROM sys_streams ORDER BY name");
  ASSERT_EQ(before.rows.size(), 2u);
  EXPECT_EQ(before.rows[0][0].AsString(), "derived");
  EXPECT_EQ(before.rows[1][0].AsString(), "raw");
  EXPECT_TRUE(before.rows[1][1].is_null());  // nothing ingested yet

  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1),
                                   Value::Timestamp(30 * kSec)}})
                  .ok());
  auto after = MustExecute(
      &db_, "SELECT watermark FROM sys_streams WHERE name = 's'");
  EXPECT_EQ(after.rows[0][0].AsTimestampMicros(), 30 * kSec);
}

TEST_F(SystemTablesTest, SysCqsShowsStrategyAndProgress) {
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  ASSERT_TRUE(db_.CreateContinuousQuery(
                    "metric",
                    "SELECT count(*) FROM s <VISIBLE '1 minute'>")
                  .ok());
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1),
                                   Value::Timestamp(kSec)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("s", 2 * kMin).ok());
  auto r = MustExecute(&db_,
                       "SELECT strategy, windows_evaluated FROM sys_cqs "
                       "WHERE name = 'metric'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "shared");
  EXPECT_EQ(r.rows[0][1].AsInt64(), 2);
}

TEST_F(SystemTablesTest, SysChannelsShowsWatermarkAndRows) {
  MustExecute(&db_,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>;"
              "CREATE TABLE t (c bigint);"
              "CREATE CHANNEL ch FROM agg INTO t APPEND");
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1),
                                   Value::Timestamp(kSec)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  auto r = MustExecute(
      &db_,
      "SELECT source, target, mode, watermark, rows_persisted "
      "FROM sys_channels WHERE name = 'ch'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "agg");
  EXPECT_EQ(r.rows[0][1].AsString(), "t");
  EXPECT_EQ(r.rows[0][2].AsString(), "append");
  EXPECT_EQ(r.rows[0][3].AsTimestampMicros(), kMin);
  EXPECT_EQ(r.rows[0][4].AsInt64(), 1);
}

TEST_F(SystemTablesTest, SysNamesReserved) {
  EXPECT_FALSE(db_.Execute("CREATE TABLE sys_mine (a bigint)").ok());
  EXPECT_FALSE(
      db_.Execute("CREATE STREAM sys_s (ts timestamp CQTIME USER)").ok());
  EXPECT_FALSE(db_.Execute("CREATE VIEW sys_v AS SELECT 1").ok());
}

TEST_F(SystemTablesTest, SystemTablesJoinable) {
  MustExecute(&db_, "CREATE TABLE a (x bigint)");
  MustExecute(&db_, "CREATE TABLE b (x bigint)");
  // Self-join sys_tables with an aggregate: they are ordinary relations.
  auto r = MustExecute(
      &db_,
      "SELECT count(*) FROM sys_tables WHERE name = 'a' OR name = 'b'");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
}

TEST_F(SystemTablesTest, RefreshIsStable) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  for (int i = 0; i < 5; ++i) {
    auto r = MustExecute(
        &db_, "SELECT count(*) FROM sys_tables WHERE name = 't'");
    EXPECT_EQ(r.rows[0][0].AsInt64(), 1) << "iteration " << i;
  }
}

}  // namespace
}  // namespace streamrel::engine
