#include "stream/window_operator.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kMin = kMicrosPerMinute;
constexpr int64_t kSec = kMicrosPerSecond;

WindowSpec Time(int64_t visible, int64_t advance) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.visible = visible;
  spec.advance = advance;
  return spec;
}

WindowSpec Rows(int64_t visible, int64_t advance) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kRows;
  spec.visible = visible;
  spec.advance = advance;
  return spec;
}

WindowSpec Slices(int64_t n) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kSlices;
  spec.slices_count = n;
  return spec;
}

Row R(int64_t v) { return Row{Value::Int64(v)}; }

TEST(WindowOperatorTest, TumblingWindowBasics) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  // Rows at 10s, 20s, 70s: the row at 70s closes the [0, 60s) window.
  ASSERT_TRUE(op.AddRow(10 * kMicrosPerSecond, R(1), &closed).ok());
  ASSERT_TRUE(op.AddRow(20 * kMicrosPerSecond, R(2), &closed).ok());
  EXPECT_TRUE(closed.empty());
  ASSERT_TRUE(op.AddRow(70 * kMicrosPerSecond, R(3), &closed).ok());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].close_micros, kMin);
  EXPECT_EQ(closed[0].rows.size(), 2u);
}

TEST(WindowOperatorTest, SlidingWindowOverlap) {
  // VISIBLE 2 min, ADVANCE 1 min: each row appears in two windows.
  WindowOperator op(Time(2 * kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddRow(30 * kMicrosPerSecond, R(1), &closed).ok());
  ASSERT_TRUE(op.AdvanceTime(3 * kMin, &closed).ok());
  ASSERT_EQ(closed.size(), 3u);  // closes at 1, 2, 3 min
  EXPECT_EQ(closed[0].rows.size(), 1u);  // [-1min, 1min)
  EXPECT_EQ(closed[1].rows.size(), 1u);  // [0, 2min)
  EXPECT_EQ(closed[2].rows.size(), 0u);  // [1min, 3min)
}

TEST(WindowOperatorTest, RowAtCloseBoundaryBelongsToNextWindow) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddRow(1, R(1), &closed).ok());
  ASSERT_TRUE(op.AddRow(kMin, R(2), &closed).ok());  // exactly at close
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].rows.size(), 1u);  // only the first row
  closed.clear();
  ASSERT_TRUE(op.AdvanceTime(2 * kMin, &closed).ok());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].rows.size(), 1u);  // the boundary row
}

TEST(WindowOperatorTest, EmptyWindowsAreEmitted) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddRow(1, R(1), &closed).ok());
  ASSERT_TRUE(op.AdvanceTime(5 * kMin, &closed).ok());
  ASSERT_EQ(closed.size(), 5u);
  EXPECT_EQ(closed[0].rows.size(), 1u);
  for (size_t i = 1; i < 5; ++i) EXPECT_TRUE(closed[i].rows.empty());
}

TEST(WindowOperatorTest, NoWindowsBeforeFirstRow) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AdvanceTime(10 * kMin, &closed).ok());
  EXPECT_TRUE(closed.empty());
}

TEST(WindowOperatorTest, OutOfOrderRejected) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddRow(100, R(1), &closed).ok());
  EXPECT_FALSE(op.AddRow(99, R(2), &closed).ok());
  // Equal timestamps are fine.
  EXPECT_TRUE(op.AddRow(100, R(3), &closed).ok());
}

TEST(WindowOperatorTest, WatermarkRegressionRejected) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AdvanceTime(1000, &closed).ok());
  EXPECT_FALSE(op.AdvanceTime(999, &closed).ok());
}

TEST(WindowOperatorTest, EvictionBoundsBuffer) {
  WindowOperator op(Time(2 * kMin, kMin));
  std::vector<WindowBatch> closed;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(op.AddRow(i * kMicrosPerSecond, R(i), &closed).ok());
  }
  // Only rows within the last VISIBLE span (plus the current partial
  // advance) stay buffered: far fewer than all 600.
  EXPECT_LE(op.buffered_rows(), 180u);
}

TEST(WindowOperatorTest, RowWindowTumbling) {
  WindowOperator op(Rows(3, 3));
  std::vector<WindowBatch> closed;
  for (int i = 1; i <= 7; ++i) {
    ASSERT_TRUE(op.AddRow(i, R(i), &closed).ok());
  }
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].close_micros, 3);  // ts of newest row
  ASSERT_EQ(closed[0].rows.size(), 3u);
  EXPECT_EQ(closed[0].rows[0][0].AsInt64(), 1);
  EXPECT_EQ(closed[1].rows[2][0].AsInt64(), 6);
}

TEST(WindowOperatorTest, RowWindowSliding) {
  WindowOperator op(Rows(4, 2));
  std::vector<WindowBatch> closed;
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(op.AddRow(i, R(i), &closed).ok());
  }
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].rows.size(), 2u);  // warm-up: only 2 rows yet
  EXPECT_EQ(closed[1].rows.size(), 4u);  // rows 1-4
  EXPECT_EQ(closed[2].rows.size(), 4u);  // rows 3-6
  EXPECT_EQ(closed[2].rows[0][0].AsInt64(), 3);
}

TEST(WindowOperatorTest, SlicesOfBatches) {
  WindowOperator op(Slices(2));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddBatch(100, {R(1), R(2)}, &closed).ok());
  EXPECT_TRUE(closed.empty());
  ASSERT_TRUE(op.AddBatch(200, {R(3)}, &closed).ok());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].close_micros, 200);
  EXPECT_EQ(closed[0].rows.size(), 3u);
}

TEST(WindowOperatorTest, SlicesOneWindowPassesThrough) {
  WindowOperator op(Slices(1));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddBatch(100, {R(1), R(2)}, &closed).ok());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].rows.size(), 2u);
  closed.clear();
  ASSERT_TRUE(op.AddBatch(200, {}, &closed).ok());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_TRUE(closed[0].rows.empty());
}

TEST(WindowOperatorTest, TimeWindowOverBatches) {
  // A time window over a derived stream: rows adopt close-1 as their
  // timestamp, so the batch closing at exactly 2min falls INSIDE the
  // downstream window [0, 2min).
  WindowOperator op(Time(2 * kMin, 2 * kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddBatch(kMin, {R(1)}, &closed).ok());
  ASSERT_TRUE(op.AddBatch(2 * kMin, {R(2)}, &closed).ok());
  ASSERT_TRUE(op.AddBatch(3 * kMin, {R(3)}, &closed).ok());
  ASSERT_TRUE(op.AddBatch(4 * kMin, {R(4)}, &closed).ok());
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].close_micros, 2 * kMin);
  EXPECT_EQ(closed[0].rows.size(), 2u);  // the 1min and 2min batches
  EXPECT_EQ(closed[1].rows.size(), 2u);  // the 3min and 4min batches
}

TEST(WindowOperatorTest, SerializeRestoreRoundTrip) {
  WindowOperator op(Time(2 * kMin, kMin));
  std::vector<WindowBatch> closed;
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(op.AddRow(i * kMicrosPerSecond, R(i), &closed).ok());
  }
  std::string blob;
  op.Serialize(&blob);

  WindowOperator restored(Time(2 * kMin, kMin));
  ASSERT_TRUE(restored.Restore(blob).ok());
  EXPECT_EQ(restored.buffered_rows(), op.buffered_rows());

  // Both operators produce identical output from here on.
  std::vector<WindowBatch> a, b;
  ASSERT_TRUE(op.AdvanceTime(5 * kMin, &a).ok());
  ASSERT_TRUE(restored.AdvanceTime(5 * kMin, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].close_micros, b[i].close_micros);
    EXPECT_EQ(a[i].rows.size(), b[i].rows.size());
  }
}

TEST(WindowOperatorTest, RestoreRejectsTruncatedBlob) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddRow(1, R(1), &closed).ok());
  std::string blob;
  op.Serialize(&blob);
  blob.resize(blob.size() / 2);
  WindowOperator other(Time(kMin, kMin));
  EXPECT_FALSE(other.Restore(blob).ok());
}

TEST(WindowOperatorTest, ResetToWatermarkSuppressesOldCloses) {
  WindowOperator op(Time(kMin, kMin));
  op.ResetToWatermark(5 * kMin);
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AdvanceTime(7 * kMin, &closed).ok());
  ASSERT_EQ(closed.size(), 2u);  // 6min and 7min only
  EXPECT_EQ(closed[0].close_micros, 6 * kMin);
}

TEST(WindowOperatorTest, ResetAcceptsReplayOfOpenSlidingRegion) {
  // VISIBLE 3min ADVANCE 1min, watermark 5min: windows closing at 6min+
  // still need rows from [3min, 5min); a recovery source replays them.
  WindowOperator op(Time(3 * kMin, kMin));
  op.ResetToWatermark(5 * kMin);
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AddRow(3 * kMin + kSec, R(1), &closed).ok());  // replayed
  ASSERT_TRUE(op.AddRow(4 * kMin + kSec, R(2), &closed).ok());  // replayed
  EXPECT_TRUE(closed.empty());  // no closes at or before the watermark
  ASSERT_TRUE(op.AddRow(5 * kMin + kSec, R(3), &closed).ok());  // new data
  ASSERT_TRUE(op.AdvanceTime(6 * kMin, &closed).ok());
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].close_micros, 6 * kMin);
  EXPECT_EQ(closed[0].rows.size(), 3u);  // [3min, 6min): all three
  // Rows older than the re-priming bound are still rejected.
  WindowOperator strict(Time(3 * kMin, kMin));
  strict.ResetToWatermark(5 * kMin);
  EXPECT_FALSE(strict.AddRow(kMin, R(9), &closed).ok());
}

TEST(WindowOperatorTest, ResetTumblingNeedsNoReplay) {
  // VISIBLE == ADVANCE: nothing before the watermark is ever needed, so
  // replayed older rows are rejected outright.
  WindowOperator op(Time(kMin, kMin));
  op.ResetToWatermark(5 * kMin);
  std::vector<WindowBatch> closed;
  EXPECT_FALSE(op.AddRow(4 * kMin + kSec, R(1), &closed).ok());
  EXPECT_TRUE(op.AddRow(5 * kMin + kSec, R(2), &closed).ok());
}

TEST(WindowOperatorTest, StartAtEnablesWatermarkOnlyScheduling) {
  WindowOperator op(Time(kMin, kMin));
  std::vector<WindowBatch> closed;
  ASSERT_TRUE(op.AdvanceTime(30 * kMicrosPerSecond, &closed).ok());
  EXPECT_TRUE(closed.empty());  // not started
  op.StartAt(30 * kMicrosPerSecond);
  ASSERT_TRUE(op.AdvanceTime(2 * kMin, &closed).ok());
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_TRUE(closed[0].rows.empty());  // shared CQs don't buffer rows here
}

}  // namespace
}  // namespace streamrel::stream
