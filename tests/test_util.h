#ifndef STREAMREL_TESTS_TEST_UTIL_H_
#define STREAMREL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"

namespace streamrel {

/// Executes `sql` and fails the test on error.
inline engine::QueryResult MustExecute(engine::Database* db,
                                       const std::string& sql) {
  auto r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << "\n -> " << r.status().ToString();
  return r.ok() ? r.TakeValue() : engine::QueryResult{};
}

/// Renders result rows as one string per row, e.g. "(1, a)".
inline std::vector<std::string> RowStrings(
    const engine::QueryResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const Row& row : result.rows) out.push_back(RowToString(row));
  return out;
}

/// Collects (close, rows) pairs from a CQ for assertions.
struct CqCapture {
  struct Batch {
    int64_t close;
    std::vector<Row> rows;
  };
  std::vector<Batch> batches;

  stream::CqCallback Callback() {
    return [this](int64_t close, const std::vector<Row>& rows) {
      batches.push_back(Batch{close, rows});
      return Status::OK();
    };
  }
};

}  // namespace streamrel

#endif  // STREAMREL_TESTS_TEST_UTIL_H_
