#include "exec/operators.h"

#include <gtest/gtest.h>

#include "exec/binder.h"
#include "sql/parser.h"

namespace streamrel::exec {
namespace {

/// Builds a BufferScanNode over literal rows.
ExecNodePtr Source(Schema schema, std::vector<Row> rows) {
  auto batch = std::make_shared<std::vector<Row>>(std::move(rows));
  return std::make_unique<BufferScanNode>(std::move(schema), batch);
}

Schema AB() {
  return Schema({Column("a", DataType::kInt64),
                 Column("b", DataType::kString)});
}

BoundExprPtr Bind(const Schema& schema, const std::string& text) {
  auto ast = sql::ParseExpression(text);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  ExprBinder binder(schema);
  auto bound = binder.BindScalar(**ast);
  EXPECT_TRUE(bound.ok()) << text << ": " << bound.status().ToString();
  return bound.ok() ? std::move(*bound) : nullptr;
}

BoundExprPtr ColRef(size_t index, DataType type) {
  auto e = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
  e->column_index = index;
  e->type = type;
  return e;
}

std::vector<Row> RunPlan(ExecNode* node) {
  ExecContext ctx;
  storage::TransactionManager txns;
  ctx.txns = &txns;
  auto r = CollectRows(node, &ctx);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Row>{};
}

TEST(BufferScanTest, EmitsBatchAndReopens) {
  auto node = Source(AB(), {{Value::Int64(1), Value::String("x")},
                            {Value::Int64(2), Value::String("y")}});
  EXPECT_EQ(RunPlan(node.get()).size(), 2u);
  EXPECT_EQ(RunPlan(node.get()).size(), 2u);  // re-executable
}

TEST(BufferScanTest, SwappableBatch) {
  auto* raw = new BufferScanNode(AB(), nullptr);
  ExecNodePtr node(raw);
  EXPECT_TRUE(RunPlan(node.get()).empty());
  raw->SetBatch(std::make_shared<std::vector<Row>>(
      std::vector<Row>{{Value::Int64(7), Value::String("z")}}));
  EXPECT_EQ(RunPlan(node.get()).size(), 1u);
}

TEST(FilterTest, KeepsMatching) {
  auto node = std::make_unique<FilterNode>(
      Source(AB(), {{Value::Int64(1), Value::String("x")},
                    {Value::Int64(5), Value::String("y")},
                    {Value::Int64(9), Value::String("z")}}),
      Bind(AB(), "a > 4"));
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 5);
}

TEST(ProjectTest, ComputesExpressions) {
  std::vector<BoundExprPtr> exprs;
  exprs.push_back(Bind(AB(), "a * 10"));
  exprs.push_back(Bind(AB(), "upper(b)"));
  auto node = std::make_unique<ProjectNode>(
      Schema({Column("x", DataType::kInt64),
              Column("u", DataType::kString)}),
      Source(AB(), {{Value::Int64(3), Value::String("ab")}}),
      std::move(exprs));
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 30);
  EXPECT_EQ(rows[0][1].AsString(), "AB");
}

TEST(LimitTest, LimitAndOffset) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({Value::Int64(i), Value::String("")});
  auto node = std::make_unique<LimitNode>(Source(AB(), rows), 3, 2);
  auto out = RunPlan(node.get());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0][0].AsInt64(), 2);
  EXPECT_EQ(out[2][0].AsInt64(), 4);
}

TEST(LimitTest, NegativeLimitMeansUnlimited) {
  std::vector<Row> rows(5, Row{Value::Int64(1), Value::String("")});
  auto node = std::make_unique<LimitNode>(Source(AB(), rows), -1, 0);
  EXPECT_EQ(RunPlan(node.get()).size(), 5u);
}

TEST(DistinctTest, RemovesDuplicates) {
  auto node = std::make_unique<DistinctNode>(
      Source(AB(), {{Value::Int64(1), Value::String("x")},
                    {Value::Int64(1), Value::String("x")},
                    {Value::Int64(1), Value::String("y")},
                    {Value::Int64(2), Value::String("x")}}));
  EXPECT_EQ(RunPlan(node.get()).size(), 3u);
}

TEST(DistinctTest, NullsAreOneGroup) {
  auto node = std::make_unique<DistinctNode>(
      Source(AB(), {{Value::Null(), Value::Null()},
                    {Value::Null(), Value::Null()}}));
  EXPECT_EQ(RunPlan(node.get()).size(), 1u);
}

TEST(SortTest, AscendingDescending) {
  std::vector<SortKey> keys;
  keys.push_back({ColRef(0, DataType::kInt64), false});
  auto node = std::make_unique<SortNode>(
      Source(AB(), {{Value::Int64(2), Value::String("b")},
                    {Value::Int64(9), Value::String("a")},
                    {Value::Int64(5), Value::String("c")}}),
      std::move(keys));
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt64(), 9);
  EXPECT_EQ(rows[2][0].AsInt64(), 2);
}

TEST(SortTest, StableOnTies) {
  std::vector<SortKey> keys;
  keys.push_back({ColRef(0, DataType::kInt64), true});
  auto node = std::make_unique<SortNode>(
      Source(AB(), {{Value::Int64(1), Value::String("first")},
                    {Value::Int64(1), Value::String("second")}}),
      std::move(keys));
  auto rows = RunPlan(node.get());
  EXPECT_EQ(rows[0][1].AsString(), "first");
  EXPECT_EQ(rows[1][1].AsString(), "second");
}

TEST(SortTest, MultiKey) {
  std::vector<SortKey> keys;
  keys.push_back({ColRef(1, DataType::kString), true});
  keys.push_back({ColRef(0, DataType::kInt64), false});
  auto node = std::make_unique<SortNode>(
      Source(AB(), {{Value::Int64(1), Value::String("b")},
                    {Value::Int64(2), Value::String("a")},
                    {Value::Int64(3), Value::String("a")}}),
      std::move(keys));
  auto rows = RunPlan(node.get());
  EXPECT_EQ(rows[0][0].AsInt64(), 3);  // a,3
  EXPECT_EQ(rows[1][0].AsInt64(), 2);  // a,2
  EXPECT_EQ(rows[2][0].AsInt64(), 1);  // b,1
}

std::unique_ptr<HashAggregateNode> MakeCountByB(std::vector<Row> input) {
  std::vector<BoundExprPtr> groups;
  groups.push_back(ColRef(1, DataType::kString));
  std::vector<AggregateCall> calls;
  AggregateCall call;
  call.function = "count";
  call.star = true;
  call.result_type = DataType::kInt64;
  call.display_name = "count(*)";
  calls.push_back(std::move(call));
  return std::make_unique<HashAggregateNode>(
      Schema({Column("b", DataType::kString),
              Column("count(*)", DataType::kInt64)}),
      Source(AB(), std::move(input)), std::move(groups), std::move(calls));
}

TEST(HashAggregateTest, GroupedCount) {
  auto node = MakeCountByB({{Value::Int64(1), Value::String("x")},
                            {Value::Int64(2), Value::String("y")},
                            {Value::Int64(3), Value::String("x")}});
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 2u);
  for (const Row& row : rows) {
    if (row[0].AsString() == "x") {
      EXPECT_EQ(row[1].AsInt64(), 2);
    } else {
      EXPECT_EQ(row[1].AsInt64(), 1);
    }
  }
}

TEST(HashAggregateTest, EmptyInputWithGroupsIsEmpty) {
  auto node = MakeCountByB({});
  EXPECT_TRUE(RunPlan(node.get()).empty());
}

TEST(HashAggregateTest, ScalarAggregateOnEmptyInput) {
  std::vector<AggregateCall> calls;
  AggregateCall call;
  call.function = "count";
  call.star = true;
  call.result_type = DataType::kInt64;
  call.display_name = "count(*)";
  calls.push_back(std::move(call));
  auto node = std::make_unique<HashAggregateNode>(
      Schema({Column("count(*)", DataType::kInt64)}), Source(AB(), {}),
      std::vector<BoundExprPtr>{}, std::move(calls));
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt64(), 0);
}

Schema XY() {
  return Schema({Column("x", DataType::kInt64),
                 Column("y", DataType::kString)});
}

TEST(HashJoinTest, InnerJoin) {
  Schema joined = Schema::Concat(AB(), XY());
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(ColRef(0, DataType::kInt64));
  rk.push_back(ColRef(0, DataType::kInt64));
  auto node = std::make_unique<HashJoinNode>(
      joined,
      Source(AB(), {{Value::Int64(1), Value::String("l1")},
                    {Value::Int64(2), Value::String("l2")},
                    {Value::Int64(3), Value::String("l3")}}),
      Source(XY(), {{Value::Int64(2), Value::String("r2")},
                    {Value::Int64(3), Value::String("r3a")},
                    {Value::Int64(3), Value::String("r3b")}}),
      std::move(lk), std::move(rk), nullptr, sql::JoinType::kInner);
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 3u);  // 2->r2, 3->r3a, 3->r3b
}

TEST(HashJoinTest, LeftJoinPadsNulls) {
  Schema joined = Schema::Concat(AB(), XY());
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(ColRef(0, DataType::kInt64));
  rk.push_back(ColRef(0, DataType::kInt64));
  auto node = std::make_unique<HashJoinNode>(
      joined,
      Source(AB(), {{Value::Int64(1), Value::String("l1")},
                    {Value::Int64(2), Value::String("l2")}}),
      Source(XY(), {{Value::Int64(2), Value::String("r2")}}),
      std::move(lk), std::move(rk), nullptr, sql::JoinType::kLeft);
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 2u);
  // Row for key 1 is null-padded on the right.
  bool found_padded = false;
  for (const Row& row : rows) {
    if (row[0].AsInt64() == 1) {
      EXPECT_TRUE(row[2].is_null());
      EXPECT_TRUE(row[3].is_null());
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Schema joined = Schema::Concat(AB(), XY());
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(ColRef(0, DataType::kInt64));
  rk.push_back(ColRef(0, DataType::kInt64));
  auto node = std::make_unique<HashJoinNode>(
      joined, Source(AB(), {{Value::Null(), Value::String("l")}}),
      Source(XY(), {{Value::Null(), Value::String("r")}}), std::move(lk),
      std::move(rk), nullptr, sql::JoinType::kInner);
  EXPECT_TRUE(RunPlan(node.get()).empty());
}

TEST(HashJoinTest, ResidualPredicate) {
  Schema joined = Schema::Concat(AB(), XY());
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(ColRef(0, DataType::kInt64));
  rk.push_back(ColRef(0, DataType::kInt64));
  auto node = std::make_unique<HashJoinNode>(
      joined,
      Source(AB(), {{Value::Int64(1), Value::String("keep")},
                    {Value::Int64(1), Value::String("drop")}}),
      Source(XY(), {{Value::Int64(1), Value::String("r")}}), std::move(lk),
      std::move(rk), Bind(joined, "b = 'keep'"), sql::JoinType::kInner);
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsString(), "keep");
}

TEST(NestedLoopJoinTest, CrossProduct) {
  Schema joined = Schema::Concat(AB(), XY());
  auto node = std::make_unique<NestedLoopJoinNode>(
      joined,
      Source(AB(), {{Value::Int64(1), Value::String("a")},
                    {Value::Int64(2), Value::String("b")}}),
      Source(XY(), {{Value::Int64(10), Value::String("x")},
                    {Value::Int64(20), Value::String("y")},
                    {Value::Int64(30), Value::String("z")}}),
      nullptr, sql::JoinType::kCross);
  EXPECT_EQ(RunPlan(node.get()).size(), 6u);
}

TEST(NestedLoopJoinTest, NonEquiCondition) {
  Schema joined = Schema::Concat(AB(), XY());
  auto node = std::make_unique<NestedLoopJoinNode>(
      joined,
      Source(AB(), {{Value::Int64(5), Value::String("l")}}),
      Source(XY(), {{Value::Int64(3), Value::String("lt")},
                    {Value::Int64(7), Value::String("gt")}}),
      Bind(joined, "a > x"), sql::JoinType::kInner);
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][3].AsString(), "lt");
}

TEST(NestedLoopJoinTest, LeftJoinNoMatch) {
  Schema joined = Schema::Concat(AB(), XY());
  auto node = std::make_unique<NestedLoopJoinNode>(
      joined, Source(AB(), {{Value::Int64(5), Value::String("l")}}),
      Source(XY(), {}), nullptr, sql::JoinType::kLeft);
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][2].is_null());
}

TEST(UnionAllTest, ConcatenatesChildren) {
  std::vector<ExecNodePtr> children;
  children.push_back(Source(AB(), {{Value::Int64(1), Value::String("a")}}));
  children.push_back(Source(AB(), {}));
  children.push_back(Source(AB(), {{Value::Int64(2), Value::String("b")},
                                   {Value::Int64(3), Value::String("c")}}));
  auto node = std::make_unique<UnionAllNode>(AB(), std::move(children));
  auto rows = RunPlan(node.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows[2][0].AsInt64(), 3);
}

TEST(ExplainTest, RendersTree) {
  auto node = std::make_unique<FilterNode>(Source(AB(), {}),
                                           Bind(AB(), "a > 1"));
  std::string plan = ExplainPlan(*node);
  EXPECT_NE(plan.find("Filter"), std::string::npos);
  EXPECT_NE(plan.find("BufferScan"), std::string::npos);
}

TEST(HelpersTest, HashAndEquality) {
  std::vector<Value> a = {Value::Int64(1), Value::String("x")};
  std::vector<Value> b = {Value::Int64(1), Value::String("x")};
  std::vector<Value> c = {Value::Int64(2), Value::String("x")};
  EXPECT_EQ(HashValues(a), HashValues(b));
  EXPECT_TRUE(ValuesEqual(a, b));
  EXPECT_FALSE(ValuesEqual(a, c));
  EXPECT_FALSE(ValuesEqual(a, {Value::Int64(1)}));
}

}  // namespace
}  // namespace streamrel::exec
