// Crash-recovery torture suite: randomized workloads (CQs, channels into
// active tables, DML, mid-stream SET PARALLELISM) run once without faults
// as the oracle, then re-run with an injected crash at sampled k-th
// fault-point hits. Each crash is followed by WAL tail damage
// (clean/torn/corrupt, rotating), a restart, one of the two recovery
// strategies, and a re-feed of the unpersisted suffix of the stream. The
// recovered tables must match the oracle byte for byte.
//
// Reproduce a failure from the SCOPED_TRACE output, e.g.
//   seed=17 strategy=checkpoint k=9 mode=2
// with --gtest_filter='*Torture*/17'.

#include "stream/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

// Two dataflows with different CQ strategies, so both recovery paths are
// exercised: url_counts is a shared-strategy aggregate (recoverable only
// from active tables), ev_win is a generic projection/filter CQ (the one
// checkpoint blobs can restore). Plus a plain table driven by DML.
const char* kDdl =
    "CREATE STREAM clicks (url varchar, ts timestamp CQTIME USER, "
    "bytes bigint);"
    "CREATE STREAM url_counts AS SELECT url, count(*) AS c, cq_close(*) AS w "
    "FROM clicks <VISIBLE '1 minute'> GROUP BY url;"
    "CREATE TABLE archive (url varchar, c bigint, w timestamp);"
    "CREATE CHANNEL arch_ch FROM url_counts INTO archive APPEND;"
    "CREATE STREAM events (k bigint, ts timestamp CQTIME USER, v bigint);"
    "CREATE STREAM ev_win AS SELECT k, v FROM events <VISIBLE '1 minute'> "
    "WHERE v > 50;"
    "CREATE TABLE ev_archive (k bigint, v bigint);"
    "CREATE CHANNEL ev_ch FROM ev_win INTO ev_archive APPEND;"
    "CREATE TABLE audit (id bigint, note varchar)";

struct Op {
  enum Kind {
    kClicks,         // ingest a batch into clicks
    kEvents,         // ingest a batch into events
    kAdvanceClicks,  // heartbeat clicks to a minute boundary
    kAdvanceEvents,  // heartbeat events to a minute boundary
    kSql,            // DML (or SET PARALLELISM) via Execute
  };
  Kind kind;
  std::vector<Row> rows;
  int64_t advance_to = 0;
  std::string sql;
  /// SQL whose effect is not WAL-durable (SET PARALLELISM): re-run it
  /// unconditionally after recovery instead of only from the crashed op on.
  bool rerun_always = false;
};

Row Click(const std::string& url, int64_t ts, int64_t bytes) {
  return Row{Value::String(url), Value::Timestamp(ts), Value::Int64(bytes)};
}
Row Event(int64_t k, int64_t ts, int64_t v) {
  return Row{Value::Int64(k), Value::Timestamp(ts), Value::Int64(v)};
}

/// Deterministic workload for `seed`. Per-stream timestamps are strictly
/// increasing and never fall on a minute boundary (777us offset), so every
/// row belongs to exactly one tumbling window and a channel watermark
/// cleanly splits rows into persisted (< W) and unpersisted (> W).
std::vector<Op> MakeWorkload(int seed, bool with_parallelism) {
  std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 17);
  std::vector<Op> ops;
  // Per-stream position in whole seconds; actual ts = sec*kSec + 777.
  int64_t clicks_sec = 5 + static_cast<int64_t>(rng() % 20);
  int64_t events_sec = 5 + static_cast<int64_t>(rng() % 20);
  const char* urls[] = {"/a", "/b", "/c", "/d"};
  int64_t next_audit_id = 1;
  int dml_phase = 0;

  if (with_parallelism) {
    ops.push_back(Op{Op::kSql, {}, 0, "SET PARALLELISM 4", true});
  }
  const int n_ops = 12 + static_cast<int>(rng() % 6);
  for (int i = 0; i < n_ops; ++i) {
    switch (rng() % 5) {
      case 0:
      case 1: {  // clicks batch
        Op op{Op::kClicks, {}, 0, "", false};
        const int n = 1 + static_cast<int>(rng() % 3);
        for (int r = 0; r < n; ++r) {
          clicks_sec += 1 + static_cast<int64_t>(rng() % 40);
          op.rows.push_back(Click(urls[rng() % 4], clicks_sec * kSec + 777,
                                  static_cast<int64_t>(rng() % 1000)));
        }
        ops.push_back(std::move(op));
        break;
      }
      case 2: {  // events batch
        Op op{Op::kEvents, {}, 0, "", false};
        const int n = 1 + static_cast<int>(rng() % 3);
        for (int r = 0; r < n; ++r) {
          events_sec += 1 + static_cast<int64_t>(rng() % 40);
          op.rows.push_back(Event(static_cast<int64_t>(rng() % 5),
                                  events_sec * kSec + 777,
                                  static_cast<int64_t>(rng() % 100)));
        }
        ops.push_back(std::move(op));
        break;
      }
      case 3: {  // advance one of the streams to a minute boundary
        const bool clicks = rng() % 2 == 0;
        int64_t& sec = clicks ? clicks_sec : events_sec;
        const int64_t minute = sec / 60 + 1 + static_cast<int64_t>(rng() % 2);
        sec = minute * 60 + 1 + static_cast<int64_t>(rng() % 30);
        ops.push_back(Op{clicks ? Op::kAdvanceClicks : Op::kAdvanceEvents,
                         {},
                         minute * kMin,
                         "",
                         false});
        break;
      }
      case 4: {  // DML against the audit table
        std::string sql;
        switch (dml_phase++ % 3) {
          case 0:
            sql = "INSERT INTO audit VALUES (" +
                  std::to_string(next_audit_id++) + ", 'n" +
                  std::to_string(i) + "')";
            break;
          case 1:
            sql = "UPDATE audit SET note = 'u" + std::to_string(i) +
                  "' WHERE id = " +
                  std::to_string(1 + rng() % std::max<int64_t>(
                                              1, next_audit_id - 1));
            break;
          default:
            sql = "DELETE FROM audit WHERE id = " +
                  std::to_string(1 + rng() % std::max<int64_t>(
                                              1, next_audit_id - 1));
            break;
        }
        ops.push_back(Op{Op::kSql, {}, 0, std::move(sql), false});
        break;
      }
    }
  }
  // Close every window so the oracle's final state is fully persisted.
  const int64_t final_minute =
      std::max(clicks_sec, events_sec) / 60 + 2;
  ops.push_back(Op{Op::kAdvanceClicks, {}, final_minute * kMin, "", false});
  ops.push_back(Op{Op::kAdvanceEvents, {}, final_minute * kMin, "", false});
  return ops;
}

Status ApplyOp(engine::Database* db, const Op& op) {
  switch (op.kind) {
    case Op::kClicks:
      return db->Ingest("clicks", op.rows);
    case Op::kEvents:
      return db->Ingest("events", op.rows);
    case Op::kAdvanceClicks:
      return db->AdvanceTime("clicks", op.advance_to);
    case Op::kAdvanceEvents:
      return db->AdvanceTime("events", op.advance_to);
    case Op::kSql:
      return db->Execute(op.sql).status();
  }
  return Status::Internal("unreachable op kind");
}

/// Canonical final state of every durable table, for oracle comparison.
std::vector<std::string> TableState(engine::Database* db) {
  std::vector<std::string> out;
  out.push_back("-- archive --");
  for (auto& s : RowStrings(MustExecute(
           db, "SELECT url, c, w FROM archive ORDER BY w, url, c"))) {
    out.push_back(s);
  }
  out.push_back("-- ev_archive --");
  for (auto& s : RowStrings(MustExecute(
           db, "SELECT k, v FROM ev_archive ORDER BY k, v"))) {
    out.push_back(s);
  }
  out.push_back("-- audit --");
  for (auto& s : RowStrings(MustExecute(
           db, "SELECT id, note FROM audit ORDER BY id, note"))) {
    out.push_back(s);
  }
  return out;
}

enum class Strategy { kActiveTables, kCheckpoint };

/// Runs ops until an injected crash fires. Returns the index of the first
/// op whose work is NOT durable (the op the crash interrupted — its
/// autocommit transaction never synced, so its DML must be re-run), or -1
/// if every op completed. For the checkpoint strategy, checkpoints are
/// written every `ckpt_period` ops; a crash inside a checkpoint loses no
/// op work, so the next op index is returned.
int RunUntilCrash(engine::Database* db, const std::vector<Op>& ops,
                  int ckpt_period, CheckpointManager* ckpt) {
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    if (!ApplyOp(db, ops[i]).ok()) return i;
    if (ckpt != nullptr && (i + 1) % ckpt_period == 0) {
      if (!ckpt->WriteCheckpoint().ok()) return i + 1;
    }
  }
  return -1;
}

int64_t WatermarkOf(const WalReplayResult& replay, const std::string& ch) {
  auto it = replay.channel_watermarks.find(ch);
  return it == replay.channel_watermarks.end() ? INT64_MIN : it->second;
}

/// Restarts over the crashed storage, recovers with `strategy`, re-feeds
/// the unpersisted suffix of each stream, and returns the final state.
/// `crash_op` is RunUntilCrash's return value.
std::vector<std::string> RecoverAndRefeed(
    const std::shared_ptr<storage::SimulatedDisk>& disk,
    const std::shared_ptr<storage::WriteAheadLog>& wal,
    const std::vector<Op>& ops, int crash_op, Strategy strategy) {
  disk->DropCache();
  auto db = std::make_unique<engine::Database>(disk, wal);
  MustExecute(db.get(), kDdl);
  auto replay = db->RecoverFromWal();
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (!replay.ok()) return {};

  const int64_t w_arch = WatermarkOf(*replay, "arch_ch");
  const int64_t w_ev = WatermarkOf(*replay, "ev_ch");
  // Events re-feed threshold: with a restored checkpoint blob the operator
  // already buffers everything at or before the blob's coverage, so the
  // re-feed starts strictly past it; otherwise it starts at the channel
  // watermark (rows below it are already in the active table).
  int64_t ev_threshold = w_ev;
  bool ev_exclusive = false;
  if (strategy == Strategy::kActiveTables) {
    Status st = ResumeFromActiveTables(db->runtime(), *replay);
    EXPECT_TRUE(st.ok()) << st.ToString();
  } else {
    CheckpointManager restore(db->runtime(), db->wal().get());
    Status st = restore.RestoreFromCheckpoints(*replay);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto ckpt = replay->latest_checkpoints.find("$derived$ev_win");
    if (ckpt != replay->latest_checkpoints.end()) {
      ev_threshold = ckpt->second.coverage;
      ev_exclusive = true;
    }
  }

  // Exactly-once probe: nothing already persisted may be re-delivered.
  Status sub =
      db->runtime()
          ->SubscribeStream(
              "url_counts",
              [w_arch](int64_t close, const std::vector<Row>&) {
                EXPECT_GT(close, w_arch) << "re-delivered persisted window";
                return Status::OK();
              })
          .status();
  EXPECT_TRUE(sub.ok()) << sub.ToString();
  sub = db->runtime()
            ->SubscribeStream(
                "ev_win",
                [w_ev](int64_t close, const std::vector<Row>&) {
                  EXPECT_GT(close, w_ev) << "re-delivered persisted window";
                  return Status::OK();
                })
            .status();
  EXPECT_TRUE(sub.ok()) << sub.ToString();

  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kClicks:
      case Op::kEvents: {
        const bool clicks = op.kind == Op::kClicks;
        const int64_t threshold = clicks ? w_arch : ev_threshold;
        const bool exclusive = clicks ? false : ev_exclusive;
        std::vector<Row> keep;
        for (const Row& row : op.rows) {
          const int64_t ts = row[1].AsTimestampMicros();
          if (exclusive ? ts > threshold : ts >= threshold) {
            keep.push_back(row);
          }
        }
        if (!keep.empty()) {
          Status st = db->Ingest(clicks ? "clicks" : "events", keep);
          EXPECT_TRUE(st.ok()) << "refeed op " << i << ": " << st.ToString();
        }
        break;
      }
      case Op::kAdvanceClicks:
      case Op::kAdvanceEvents: {
        // Heartbeats the recovered operator already processed must not
        // re-run (watermark regression). For clicks that is everything up
        // to the channel watermark recovery rewound to; for events a
        // restored checkpoint blob may have advanced further than the
        // last persisted window (empty closes leave no durable trace), so
        // its coverage wins.
        const int64_t wm = op.kind == Op::kAdvanceClicks
                               ? w_arch
                               : std::max(w_ev, ev_threshold);
        if (op.advance_to <= wm) break;
        Status st = ApplyOp(db.get(), op);
        EXPECT_TRUE(st.ok()) << "refeed op " << i << " advance("
                             << (op.kind == Op::kAdvanceClicks ? "clicks"
                                                               : "events")
                             << ") to " << op.advance_to
                             << " w_arch=" << w_arch << " w_ev=" << w_ev
                             << " ev_threshold=" << ev_threshold << ": "
                             << st.ToString();
        break;
      }
      case Op::kSql: {
        // Ops before the crashed one committed durably (their WAL commit
        // synced) and were rebuilt by replay; re-running them would
        // double-apply. The crashed op and everything after never
        // committed.
        if (op.rerun_always || i >= crash_op) MustExecute(db.get(), op.sql);
        break;
      }
    }
  }
  return TableState(db.get());
}

/// One full torture pass for (seed, strategy): oracle, fault-hit count,
/// then a crash at sampled k-th hits with all three tail-damage modes.
void TortureOne(int seed, Strategy strategy) {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Reset();
  const std::vector<Op> ops = MakeWorkload(seed, /*with_parallelism=*/false);
  const int ckpt_period =
      strategy == Strategy::kCheckpoint ? 3 + seed % 4 : 0;

  // Oracle: no faults, straight through.
  std::vector<std::string> expected;
  {
    engine::Database oracle;
    MustExecute(&oracle, kDdl);
    for (const Op& op : ops) {
      Status st = ApplyOp(&oracle, op);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    expected = TableState(&oracle);
  }

  // Counting run: same code path as a crash run, minus the crash — learns
  // the total number of fault-point hits H the workload produces.
  int64_t total_hits = 0;
  {
    engine::Database db;
    MustExecute(&db, kDdl);
    injector.Reset();
    injector.EnableCounting(true);
    std::unique_ptr<CheckpointManager> ckpt;
    if (ckpt_period > 0) {
      ckpt = std::make_unique<CheckpointManager>(db.runtime(),
                                                 db.wal().get());
    }
    ASSERT_EQ(RunUntilCrash(&db, ops, ckpt_period, ckpt.get()), -1);
    total_hits = injector.totals().hits;
    injector.Reset();
  }
  ASSERT_GT(total_hits, 0);

  // Crash at sampled hit indices (all of them when the workload is small;
  // evenly strided plus both edges otherwise, to bound runtime).
  std::vector<int64_t> ks;
  if (total_hits <= 24) {
    for (int64_t k = 1; k <= total_hits; ++k) ks.push_back(k);
  } else {
    const int64_t stride = total_hits / 12;
    for (int64_t k = 1; k <= total_hits; k += stride) ks.push_back(k);
    ks.push_back(2);
    ks.push_back(total_hits);
    ks.push_back(total_hits - 1);
    std::sort(ks.begin(), ks.end());
    ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  }

  for (int64_t k : ks) {
    const auto mode = static_cast<storage::CrashMode>(k % 3);
    SCOPED_TRACE("failing seed=" + std::to_string(seed) + " strategy=" +
                 (strategy == Strategy::kActiveTables ? "active-tables"
                                                      : "checkpoint") +
                 " k=" + std::to_string(k) +
                 " mode=" + std::to_string(static_cast<int>(mode)));
    auto disk = std::make_shared<storage::SimulatedDisk>();
    auto wal = std::make_shared<storage::WriteAheadLog>(disk);
    int crash_op;
    {
      auto db = std::make_unique<engine::Database>(disk, wal);
      MustExecute(db.get(), kDdl);
      injector.Reset();
      injector.ArmCrashAtGlobalHit(k);
      std::unique_ptr<CheckpointManager> ckpt;
      if (ckpt_period > 0) {
        ckpt = std::make_unique<CheckpointManager>(db->runtime(),
                                                   db->wal().get());
      }
      crash_op = RunUntilCrash(db.get(), ops, ckpt_period, ckpt.get());
      ASSERT_GE(crash_op, 0) << "crash did not fire (k <= H)";
      ASSERT_TRUE(injector.crashed());
    }
    // The process is dead: whatever never reached a synced WAL frame is
    // gone, and the tail may be torn or corrupted by the power cut.
    injector.Reset();
    wal->SimulateCrash(mode);

    std::vector<std::string> actual =
        RecoverAndRefeed(disk, wal, ops, crash_op, strategy);
    EXPECT_EQ(actual, expected);
    if (actual != expected) return;  // one detailed failure is enough
  }
}

class CrashRecoveryTortureTest : public ::testing::TestWithParam<int> {
 protected:
  ~CrashRecoveryTortureTest() override {
    FaultInjector::Instance().Reset();
  }
};

TEST_P(CrashRecoveryTortureTest, ActiveTableStrategyMatchesOracle) {
  TortureOne(GetParam(), Strategy::kActiveTables);
}

TEST_P(CrashRecoveryTortureTest, CheckpointStrategyMatchesOracle) {
  TortureOne(GetParam(), Strategy::kCheckpoint);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CrashRecoveryTortureTest,
                         ::testing::Range(0, 100));

// --- exactly-once channel delivery property ------------------------------

class ExactlyOnceProperty : public ::testing::TestWithParam<int> {
 protected:
  ~ExactlyOnceProperty() override { FaultInjector::Instance().Reset(); }
};

/// One random crash per seed; every (url, w) pair in the archive must
/// appear exactly once — a duplicate means a window was delivered twice,
/// a missing minute means one was lost.
TEST_P(ExactlyOnceProperty, NoDuplicateWindowsAcrossCrash) {
  const int seed = GetParam();
  FaultInjector& injector = FaultInjector::Instance();
  injector.Reset();
  const std::vector<Op> ops = MakeWorkload(seed, /*with_parallelism=*/false);

  // Count the workload's hits, then crash at a seed-derived position.
  int64_t total_hits = 0;
  {
    engine::Database db;
    MustExecute(&db, kDdl);
    injector.EnableCounting(true);
    ASSERT_EQ(RunUntilCrash(&db, ops, 0, nullptr), -1);
    total_hits = injector.totals().hits;
    injector.Reset();
  }
  ASSERT_GT(total_hits, 0);
  std::mt19937 rng(static_cast<uint32_t>(seed) * 2246822519u + 3);
  const int64_t k = 1 + static_cast<int64_t>(rng() % total_hits);
  SCOPED_TRACE("failing seed=" + std::to_string(seed) +
               " k=" + std::to_string(k));

  auto disk = std::make_shared<storage::SimulatedDisk>();
  auto wal = std::make_shared<storage::WriteAheadLog>(disk);
  int crash_op;
  {
    auto db = std::make_unique<engine::Database>(disk, wal);
    MustExecute(db.get(), kDdl);
    injector.ArmCrashAtGlobalHit(k);
    crash_op = RunUntilCrash(db.get(), ops, 0, nullptr);
    ASSERT_GE(crash_op, 0);
  }
  injector.Reset();
  wal->SimulateCrash(static_cast<storage::CrashMode>(seed % 3));

  std::vector<std::string> state = RecoverAndRefeed(
      disk, wal, ops, crash_op, Strategy::kActiveTables);
  ASSERT_FALSE(state.empty());
  // Each (url, c, w) row is unique under APPEND + exactly-once delivery:
  // one aggregate row per (url, window).
  std::set<std::string> seen;
  for (const std::string& row : state) {
    if (row == "-- ev_archive --") break;  // (k, v) rows may repeat
    if (row.rfind("--", 0) == 0) continue;
    EXPECT_TRUE(seen.insert(row).second) << "duplicate window row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactlyOnceProperty,
                         ::testing::Range(100, 200));

// --- recovery x parallelism ----------------------------------------------

class RecoveryUnderParallelism : public ::testing::TestWithParam<int> {
 protected:
  ~RecoveryUnderParallelism() override {
    FaultInjector::Instance().Reset();
  }
};

/// Crash while SET PARALLELISM 4 is active; recover and compare against a
/// serial no-crash oracle. Partition-parallel ingest must not change what
/// becomes durable or how recovery rebuilds it.
TEST_P(RecoveryUnderParallelism, MatchesSerialOracle) {
  const int seed = GetParam();
  FaultInjector& injector = FaultInjector::Instance();
  injector.Reset();
  const std::vector<Op> parallel_ops =
      MakeWorkload(seed, /*with_parallelism=*/true);
  // The serial oracle runs the identical workload minus the SET op.
  std::vector<Op> serial_ops(parallel_ops.begin() + 1, parallel_ops.end());

  std::vector<std::string> expected;
  {
    engine::Database oracle;
    MustExecute(&oracle, kDdl);
    for (const Op& op : serial_ops) {
      Status st = ApplyOp(&oracle, op);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    expected = TableState(&oracle);
  }

  int64_t total_hits = 0;
  {
    engine::Database db;
    MustExecute(&db, kDdl);
    injector.EnableCounting(true);
    ASSERT_EQ(RunUntilCrash(&db, parallel_ops, 0, nullptr), -1);
    total_hits = injector.totals().hits;
    injector.Reset();
  }
  ASSERT_GT(total_hits, 0);

  // A few crash positions spread across the run.
  for (int64_t k : {int64_t{1}, total_hits / 2, total_hits}) {
    if (k < 1) continue;
    SCOPED_TRACE("failing seed=" + std::to_string(seed) +
                 " k=" + std::to_string(k) + " (parallel)");
    auto disk = std::make_shared<storage::SimulatedDisk>();
    auto wal = std::make_shared<storage::WriteAheadLog>(disk);
    int crash_op;
    {
      auto db = std::make_unique<engine::Database>(disk, wal);
      MustExecute(db.get(), kDdl);
      injector.Reset();
      injector.ArmCrashAtGlobalHit(k);
      crash_op = RunUntilCrash(db.get(), parallel_ops, 0, nullptr);
      ASSERT_GE(crash_op, 0) << "crash did not fire";
    }
    injector.Reset();
    wal->SimulateCrash(static_cast<storage::CrashMode>(k % 3));

    std::vector<std::string> actual = RecoverAndRefeed(
        disk, wal, parallel_ops, crash_op, Strategy::kActiveTables);
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryUnderParallelism,
                         ::testing::Range(200, 220));

// --- SQL surface ---------------------------------------------------------

TEST(FaultSqlTest, SetFaultAndShowFaults) {
  FaultInjector::Instance().Reset();
  engine::Database db;
  MustExecute(&db, "SET FAULT 'wal.sync' FAIL NTH 2");
  auto shown = MustExecute(&db, "SHOW FAULTS");
  ASSERT_EQ(shown.rows.size(), 1u);
  EXPECT_EQ(shown.rows[0][0].AsString(), "wal.sync");
  EXPECT_EQ(shown.rows[0][1].AsString(), "fail-nth(2)");

  MustExecute(&db, "CREATE TABLE t (a bigint)");
  MustExecute(&db, "INSERT INTO t VALUES (1)");  // sync #1 passes
  auto failed = db.Execute("INSERT INTO t VALUES (2)");  // sync #2 fires
  EXPECT_FALSE(failed.ok());

  // While the injector is active it counts hits at every point, so other
  // points (disk.write, wal.append) may show up with policy "off"; find
  // the armed one.
  shown = MustExecute(&db, "SHOW FAULTS");
  bool saw_sync = false;
  for (const Row& row : shown.rows) {
    if (row[0].AsString() == "wal.sync") {
      saw_sync = true;
      EXPECT_EQ(row[3].AsInt64(), 1);  // one fire recorded
    }
  }
  EXPECT_TRUE(saw_sync);

  MustExecute(&db, "SET FAULT RESET");
  EXPECT_EQ(MustExecute(&db, "SHOW FAULTS").rows.size(), 0u);
  MustExecute(&db, "INSERT INTO t VALUES (3)");
}

TEST(FaultSqlTest, SetFaultCrashLatches) {
  FaultInjector::Instance().Reset();
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint)");
  MustExecute(&db, "SET FAULT 'wal.append' CRASH NTH 1");
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (1)").ok());
  // Latched: every durable operation now fails until reset.
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (2)").ok());
  EXPECT_TRUE(FaultInjector::Instance().crashed());
  MustExecute(&db, "SET FAULT RESET");
  MustExecute(&db, "INSERT INTO t VALUES (3)");
}

TEST(FaultSqlTest, ShowStatsHasRecoveryScope) {
  FaultInjector::Instance().Reset();
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint)");
  MustExecute(&db, "INSERT INTO t VALUES (1)");
  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh, "CREATE TABLE t (a bigint)");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto stats = MustExecute(&fresh, "SHOW STATS");
  bool saw_replays = false;
  for (const Row& row : stats.rows) {
    if (row[0].AsString() == "recovery" && row[1].AsString() == "wal" &&
        row[2].AsString() == "replays") {
      saw_replays = true;
      EXPECT_EQ(row[3].AsInt64(), 1);
    }
  }
  EXPECT_TRUE(saw_replays);
}

}  // namespace
}  // namespace streamrel::stream
