// Network front-end suite (ctest label: net).
//
// Covers the wire protocol (round-trips, truncated and corrupt frames
// rejected without crashing), the TCP server end to end (queries, binary
// ingest, live SUBSCRIBE pushes byte-identical to an in-process
// subscriber), the slow-consumer policy grid (BLOCK disconnects, the shed
// policies drop — with `pushes_total == admitted + shed + disconnected`
// accounting that must balance exactly), `net.*` fault-injection drills
// proving a killed connection never corrupts engine state, and the
// `SHOW STATS FOR NET` scope.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/memory_governor.h"
#include "common/time.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "test_util.h"

namespace streamrel::net {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kRpcTimeout = 10'000'000;  // generous for CI machines

// --- protocol --------------------------------------------------------------

TEST(Protocol, FrameRoundTripsEveryBodyType) {
  std::vector<Frame> frames;
  frames.push_back({FrameType::kQuery, 7, EncodeQueryBody("SELECT 1")});
  IngestBatchRequest ingest;
  ingest.stream = "s";
  ingest.system_time = 42;
  ingest.rows = {{Value::Int64(1), Value::Double(2.5)},
                 {Value::String("x"), Value::Null()}};
  frames.push_back({FrameType::kIngestBatch, 8, EncodeIngestBody(ingest)});
  frames.push_back({FrameType::kSubscribe, 9, EncodeNameBody("cq1")});
  frames.push_back({FrameType::kPing, 10, ""});
  RowSet rowset;
  rowset.message = "SELECT 1";
  rowset.schema = Schema({Column("v", DataType::kInt64)});
  rowset.rows = {{Value::Int64(5)}};
  frames.push_back({FrameType::kRowSet, 11, EncodeRowSetBody(rowset)});
  StreamRowsBody batch;
  batch.source = "cq1";
  batch.close = 60 * kSec;
  batch.rows = {{Value::Int64(12), Value::Double(0.1 + 0.2)}};
  frames.push_back({FrameType::kStreamRows, 12,
                    EncodeStreamRowsBody(batch)});
  frames.push_back({FrameType::kError, 13,
                    EncodeErrorBody(Status::NotFound("no such thing"))});
  frames.push_back({FrameType::kAck, 14, EncodeAckBody("PONG")});

  // All frames through one buffer, decoded back in order.
  std::string wire;
  for (const Frame& f : frames) EncodeFrame(f, &wire);
  size_t offset = 0;
  for (const Frame& want : frames) {
    Frame got;
    std::string error;
    ASSERT_EQ(TryDecodeFrame(wire, &offset, &got, &error),
              DecodeStatus::kFrame)
        << error;
    EXPECT_EQ(got.type, want.type);
    EXPECT_EQ(got.request_id, want.request_id);
    EXPECT_EQ(got.body, want.body);
  }
  EXPECT_EQ(offset, wire.size());

  // Body payloads decode to the original values (doubles bit-exact).
  auto ingest2 = DecodeIngestBody(EncodeIngestBody(ingest));
  ASSERT_TRUE(ingest2.ok());
  EXPECT_EQ(ingest2->stream, "s");
  EXPECT_EQ(ingest2->system_time, 42);
  ASSERT_EQ(ingest2->rows.size(), 2u);
  EXPECT_EQ(RowToString(ingest2->rows[0]), RowToString(ingest.rows[0]));
  EXPECT_EQ(RowToString(ingest2->rows[1]), RowToString(ingest.rows[1]));

  auto rowset2 = DecodeRowSetBody(EncodeRowSetBody(rowset));
  ASSERT_TRUE(rowset2.ok());
  EXPECT_EQ(rowset2->message, "SELECT 1");
  ASSERT_EQ(rowset2->schema.num_columns(), 1u);
  EXPECT_EQ(rowset2->schema.columns()[0].name, "v");

  auto batch2 = DecodeStreamRowsBody(EncodeStreamRowsBody(batch));
  ASSERT_TRUE(batch2.ok());
  EXPECT_EQ(batch2->close, 60 * kSec);
  EXPECT_EQ(batch2->rows[0][1].AsDouble(), 0.1 + 0.2);  // bit-exact

  Status err = DecodeErrorBody(EncodeErrorBody(Status::NotFound("gone")));
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.message(), "gone");
}

TEST(Protocol, TruncatedFrameNeedsMoreNeverCorrupt) {
  std::string wire;
  EncodeFrame({FrameType::kQuery, 1, EncodeQueryBody("SELECT 1")}, &wire);
  // Every proper prefix is "need more", not corrupt — partial reads off a
  // socket must never kill the connection.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::string partial = wire.substr(0, cut);
    size_t offset = 0;
    Frame frame;
    EXPECT_EQ(TryDecodeFrame(partial, &offset, &frame, nullptr),
              DecodeStatus::kNeedMore)
        << "prefix length " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(Protocol, CorruptFramesRejectedWithoutCrashing) {
  std::string wire;
  EncodeFrame({FrameType::kQuery, 1, EncodeQueryBody("SELECT 1")}, &wire);
  // Flip each byte in turn: the decoder must return kCorrupt (checksum,
  // type, or length check) or kNeedMore (length field grew) — never a
  // bogus frame, never a crash.
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    size_t offset = 0;
    Frame frame;
    std::string error;
    DecodeStatus ds = TryDecodeFrame(bad, &offset, &frame, &error);
    EXPECT_TRUE(ds == DecodeStatus::kCorrupt || ds == DecodeStatus::kNeedMore)
        << "byte " << i << " decoded as a valid frame";
  }
  // Absurd length prefix: corrupt, not a 4GB allocation.
  std::string absurd(8, '\xff');
  size_t offset = 0;
  Frame frame;
  EXPECT_EQ(TryDecodeFrame(absurd, &offset, &frame, nullptr),
            DecodeStatus::kCorrupt);
}

// --- server fixture --------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().Reset();
    server_ = std::make_unique<Server>(&db_, options_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0) << "--port 0 must report the bound port";
  }

  void TearDown() override {
    server_.reset();
    FaultInjector::Instance().Reset();
  }

  Client MakeClient() {
    Client client;
    Status st = client.Connect("127.0.0.1", server_->port(), kRpcTimeout);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return client;
  }

  // CQTIME SYSTEM stream + tumbling-window derived stream: a subscriber
  // to `agg` sees one aggregate row per closed minute.
  void CreateAggPipeline(Client* client) {
    auto r = client->Query(
        "CREATE STREAM s (v bigint, ts timestamp CQTIME SYSTEM);"
        "CREATE STREAM agg AS SELECT count(*), sum(v) FROM s "
        "<VISIBLE '1 minute'>");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  engine::Database db_;
  ServerOptions options_;
  std::unique_ptr<Server> server_;
};

// --- happy paths -----------------------------------------------------------

TEST_F(NetworkTest, QueryIngestSubscribeEndToEnd) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Ping(kRpcTimeout).ok());
  CreateAggPipeline(&client);

  // In-process subscriber: the oracle for byte-identical delivery.
  CqCapture local;
  auto ticket = db_.Subscribe("agg", local.Callback());
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();

  ASSERT_TRUE(client.Subscribe("agg", kRpcTimeout).ok());

  // Binary ingest; the second batch's timestamp pushes the watermark past
  // the first window so it closes and fans out.
  std::vector<Row> rows;
  for (int i = 1; i <= 5; ++i) {
    rows.push_back({Value::Int64(i), Value::Null()});
  }
  ASSERT_TRUE(
      client.IngestBatch("s", rows, /*system_time=*/10 * kSec, kRpcTimeout)
          .ok());
  ASSERT_TRUE(client
                  .IngestBatch("s", {{Value::Int64(0), Value::Null()}},
                               /*system_time=*/130 * kSec, kRpcTimeout)
                  .ok());

  auto push = client.NextPush(kRpcTimeout);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  EXPECT_EQ(push->source, "agg");
  ASSERT_GE(local.batches.size(), 1u)
      << "remote and local subscriber must see the same deliveries";
  EXPECT_EQ(push->close, local.batches[0].close);
  ASSERT_EQ(push->rows.size(), local.batches[0].rows.size());
  for (size_t i = 0; i < push->rows.size(); ++i) {
    // Byte-identical: both rows re-serialize to the same bytes.
    std::string remote_bytes, local_bytes;
    SerializeRow(push->rows[i], &remote_bytes);
    SerializeRow(local.batches[0].rows[i], &local_bytes);
    EXPECT_EQ(remote_bytes, local_bytes);
    EXPECT_EQ(RowToString(push->rows[i]),
              RowToString(local.batches[0].rows[i]));
  }
  ASSERT_TRUE(db_.Unsubscribe(*ticket).ok());
}

TEST_F(NetworkTest, SubscribeViaSqlAndUnsubscribe) {
  Client client = MakeClient();
  CreateAggPipeline(&client);
  // SUBSCRIBE TO issued as SQL through the QUERY frame.
  auto sub = client.Query("SUBSCRIBE TO agg");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_NE(sub->message.find("SUBSCRIBED"), std::string::npos);
  // Duplicate subscription on the same connection: AlreadyExists.
  auto dup = client.Subscribe("agg", kRpcTimeout);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(server_->stats().subscriptions_active, 1);

  auto unsub = client.Query("UNSUBSCRIBE FROM agg");
  ASSERT_TRUE(unsub.ok()) << unsub.status().ToString();
  EXPECT_EQ(server_->stats().subscriptions_active, 0);
  // Unsubscribing again: NotFound.
  EXPECT_EQ(client.Unsubscribe("agg", kRpcTimeout).code(),
            StatusCode::kNotFound);
  // SUBSCRIBE outside a network session is rejected with a pointer here.
  auto local = db_.Execute("SUBSCRIBE TO agg");
  ASSERT_FALSE(local.ok());
  EXPECT_NE(local.status().message().find("network"), std::string::npos);
}

TEST_F(NetworkTest, QueryErrorsRoundTripStatusCodes) {
  Client client = MakeClient();
  auto parse = client.Query("SELEKT 1");
  EXPECT_EQ(parse.status().code(), StatusCode::kParseError);
  auto missing = client.Query("SELECT * FROM nope");
  EXPECT_FALSE(missing.ok());
  auto ingest = client.IngestBatch("ghost", {{Value::Int64(1)}},
                                   /*system_time=*/0, kRpcTimeout);
  EXPECT_FALSE(ingest.ok());
  auto sub = client.Subscribe("ghost", kRpcTimeout);
  EXPECT_EQ(sub.code(), StatusCode::kNotFound);
  // The connection survived all of it.
  EXPECT_TRUE(client.Ping(kRpcTimeout).ok());
}

TEST_F(NetworkTest, ShowStatsForNetReportsTraffic) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Ping(kRpcTimeout).ok());
  auto stats = client.Query("SHOW STATS FOR NET");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(stats->rows.empty());
  // Every row is in the net scope; the counters we drove are present.
  bool saw_connections = false, saw_ping = false, saw_latency = false;
  for (const Row& row : stats->rows) {
    ASSERT_GE(row.size(), 4u);
    EXPECT_EQ(row[0].AsString(), "net");
    const std::string name = row[1].AsString();
    const std::string metric = row[2].AsString();
    if (name == "server" && metric == "connections_accepted") {
      saw_connections = true;
      EXPECT_GE(row[3].AsInt64(), 1);
    }
    if (name == "frames" && metric == "ping") {
      saw_ping = true;
      EXPECT_GE(row[3].AsInt64(), 1);
    }
    if (name == "requests" && metric == "request_micros_count") {
      saw_latency = true;
      EXPECT_GE(row[3].AsInt64(), 1);
    }
  }
  EXPECT_TRUE(saw_connections);
  EXPECT_TRUE(saw_ping);
  EXPECT_TRUE(saw_latency);
}

// --- corrupt input over the wire ------------------------------------------

TEST_F(NetworkTest, CorruptWireFrameKillsConnectionNotEngine) {
  Client good = MakeClient();
  ASSERT_TRUE(good.Query("CREATE TABLE t (v bigint)").ok());

  // Raw socket sending a frame whose checksum byte was flipped.
  std::string wire;
  EncodeFrame({FrameType::kQuery, 1, EncodeQueryBody("SELECT 1")}, &wire);
  wire[5] = static_cast<char>(wire[5] ^ 0x40);
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  // The server answers with an ERROR frame and closes; read until EOF.
  std::string response;
  char tmp[4096];
  for (;;) {
    ssize_t n = recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) break;
    response.append(tmp, static_cast<size_t>(n));
  }
  close(fd);
  size_t offset = 0;
  Frame frame;
  ASSERT_EQ(TryDecodeFrame(response, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_GE(server_->stats().frames_bad, 1);

  // The engine and other connections are untouched.
  ASSERT_TRUE(good.Query("INSERT INTO t VALUES (1)").ok());
  auto r = good.Query("SELECT v FROM t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
}

// --- slow-consumer policy grid --------------------------------------------

class SlowConsumerTest : public NetworkTest {
 protected:
  void SetUp() override {
    // Small queue bound, minimum kernel send buffer, short BLOCK timeout:
    // a non-reading subscriber back-pressures after a few frames and the
    // grid runs fast.
    options_.max_send_queue_bytes = 24 * 1024;
    options_.block_timeout_micros = 30'000;
    options_.so_sndbuf = 1;  // kernel clamps to its minimum
    NetworkTest::SetUp();
  }

  // A subscriber that acknowledges SUBSCRIBE and then never reads again,
  // with the smallest receive window the kernel allows.
  struct LazySubscriber {
    int fd = -1;
    ~LazySubscriber() {
      if (fd >= 0) close(fd);
    }
    void SubscribeAndStall(uint16_t port, const std::string& name) {
      fd = socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      int tiny = 1;  // clamped up to the kernel minimum
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      ASSERT_EQ(
          connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
      std::string wire;
      EncodeFrame({FrameType::kSubscribe, 1, EncodeNameBody(name)}, &wire);
      ASSERT_EQ(send(fd, wire.data(), wire.size(), 0),
                static_cast<ssize_t>(wire.size()));
      // Read exactly the SUBSCRIBE ack, then stall.
      std::string buf;
      char tmp[512];
      for (;;) {
        size_t offset = 0;
        Frame frame;
        if (TryDecodeFrame(buf, &offset, &frame, nullptr) ==
            DecodeStatus::kFrame) {
          ASSERT_EQ(frame.type, FrameType::kAck);
          break;
        }
        ssize_t n = recv(fd, tmp, sizeof(tmp), 0);
        ASSERT_GT(n, 0);
        buf.append(tmp, static_cast<size_t>(n));
      }
    }
  };

  // Drives `n_windows` window closes (each one padded push frame) into a
  // stalled subscriber under `policy`, then returns the final stats.
  NetStats RunGrid(const std::string& policy, int n_windows) {
    Client control = MakeClient();
    auto ddl = control.Query(
        "CREATE STREAM s (v bigint, pad varchar, "
        "ts timestamp CQTIME SYSTEM);"
        "CREATE STREAM agg AS SELECT v, pad FROM s <VISIBLE '1 minute'>;"
        "SET OVERLOAD POLICY agg " + policy);
    EXPECT_TRUE(ddl.ok()) << ddl.status().ToString();

    LazySubscriber lazy;
    lazy.SubscribeAndStall(server_->port(), "agg");
    if (::testing::Test::HasFatalFailure()) return server_->stats();

    // ~8KB of padding per window: a few frames fill the kernel buffers,
    // then the queue, then the policy decides.
    const std::string pad(2048, 'x');
    for (int w = 0; w < n_windows; ++w) {
      std::vector<Row> rows;
      for (int i = 0; i < 4; ++i) {
        rows.push_back(
            {Value::Int64(w * 10 + i), Value::String(pad), Value::Null()});
      }
      Status st = control.IngestBatch(
          "s", rows, /*system_time=*/(w * 60 + 10) * kSec, kRpcTimeout);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    // Close the last window.
    control.IngestBatch(
        "s", {{Value::Int64(0), Value::String("x"), Value::Null()}},
        /*system_time=*/(n_windows * 60 + 10) * kSec, kRpcTimeout);
    // The control connection stays healthy regardless of lazy's fate.
    EXPECT_TRUE(control.Ping(kRpcTimeout).ok());
    return server_->stats();
  }
};

TEST_F(SlowConsumerTest, BlockPolicyDisconnectsAndBalances) {
  NetStats s = RunGrid("BLOCK", 12);
  EXPECT_GE(s.slow_disconnects, 1)
      << "BLOCK must disconnect a consumer that never drains";
  EXPECT_GE(s.pushes_disconnected, 1);
  EXPECT_EQ(s.pushes_total,
            s.pushes_admitted + s.pushes_shed + s.pushes_disconnected);
}

TEST_F(SlowConsumerTest, ShedNewestDropsAndBalances) {
  NetStats s = RunGrid("SHED_NEWEST", 12);
  EXPECT_GE(s.pushes_shed, 1) << "a saturated queue must shed";
  EXPECT_EQ(s.slow_disconnects, 0)
      << "shed policies never disconnect a slow consumer";
  EXPECT_EQ(s.pushes_total,
            s.pushes_admitted + s.pushes_shed + s.pushes_disconnected);
}

TEST_F(SlowConsumerTest, ShedOldestEvictsAndBalances) {
  NetStats s = RunGrid("SHED_OLDEST", 12);
  EXPECT_GE(s.pushes_shed, 1);
  EXPECT_EQ(s.slow_disconnects, 0);
  EXPECT_EQ(s.pushes_total,
            s.pushes_admitted + s.pushes_shed + s.pushes_disconnected);
}

// --- fault-injection drills -----------------------------------------------

TEST_F(NetworkTest, NetReadFaultKillsConnectionEngineSurvives) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Query("CREATE TABLE t (v bigint);"
                           "INSERT INTO t VALUES (7)")
                  .ok());
  FaultInjector::Instance().Arm("net.read", FaultPolicy::FailOnce());
  // The next request hits net.read on the server: connection dies.
  auto r = client.Query("SELECT v FROM t", /*timeout=*/2'000'000);
  EXPECT_FALSE(r.ok());
  FaultInjector::Instance().Disarm("net.read");
  // Fresh connection: state intact, the INSERT is durable in the engine.
  Client again = MakeClient();
  auto r2 = again.Query("SELECT v FROM t");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->rows.size(), 1u);
  EXPECT_EQ(r2->rows[0][0].AsInt64(), 7);
}

// FailOnce on net.write needs a deterministic "first write after the
// engine call". With the request-worker pool the subscriber's push (woken
// by the window close) can race the driver's ACK to the socket, and the
// fault would kill the subscriber instead. Inline dispatch restores the
// fixed ordering: the driver's ACK is flushed inside the loop thread's
// frame handling, before the push queue is serviced.
class InlineDispatchTest : public NetworkTest {
 protected:
  void SetUp() override {
    options_.worker_threads = 0;
    NetworkTest::SetUp();
  }
};

TEST_F(InlineDispatchTest, NetWriteFaultMidSubscriptionNeverCorruptsEngine) {
  Client client = MakeClient();
  CreateAggPipeline(&client);
  ASSERT_TRUE(client.Subscribe("agg", kRpcTimeout).ok());
  Client driver = MakeClient();
  ASSERT_TRUE(driver
                  .IngestBatch("s", {{Value::Int64(1), Value::Null()}},
                               /*system_time=*/10 * kSec, kRpcTimeout)
                  .ok());

  FaultInjector::Instance().Arm("net.write", FaultPolicy::FailOnce());
  // This ingest closes the window. The injected write fault fires on the
  // first flush after the engine call — the driver's own ACK — killing
  // the driver connection AFTER the rows were applied. The engine and the
  // subscriber's queued push must both survive.
  Status st = driver.IngestBatch("s", {{Value::Int64(2), Value::Null()}},
                                 /*system_time=*/70 * kSec,
                                 /*timeout=*/2'000'000);
  FaultInjector::Instance().Disarm("net.write");
  EXPECT_FALSE(st.ok()) << "the faulted connection must die, not hang";

  // The subscriber still receives the window that closed during the
  // faulted request: the ingest took effect exactly once.
  auto push = client.NextPush(kRpcTimeout);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  EXPECT_EQ(push->source, "agg");

  // And a fresh connection keeps driving the same pipeline.
  Client again = MakeClient();
  ASSERT_TRUE(again
                  .IngestBatch("s", {{Value::Int64(3), Value::Null()}},
                               /*system_time=*/130 * kSec, kRpcTimeout)
                  .ok());
  auto push2 = client.NextPush(kRpcTimeout);
  ASSERT_TRUE(push2.ok()) << push2.status().ToString();
  EXPECT_GT(push2->close, push->close);
}

TEST_F(NetworkTest, NetAcceptFaultRefusesConnectionThenRecovers) {
  FaultInjector::Instance().Arm("net.accept", FaultPolicy::FailOnce());
  Client refused;
  Status st =
      refused.Connect("127.0.0.1", server_->port(), /*timeout=*/500'000);
  // The TCP connect may succeed before the server closes the socket; the
  // first round-trip must then fail.
  if (st.ok()) st = refused.Ping(500'000);
  EXPECT_FALSE(st.ok());
  FaultInjector::Instance().Disarm("net.accept");
  Client ok = MakeClient();
  EXPECT_TRUE(ok.Ping(kRpcTimeout).ok());
}

// --- lifecycle -------------------------------------------------------------

TEST_F(NetworkTest, GracefulDrainFlushesBeforeClosing) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Query("CREATE TABLE t (v bigint)").ok());
  server_->Drain();
  EXPECT_FALSE(server_->running());
  // After drain the port no longer accepts.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server_->port(), 300'000).ok());
}

TEST_F(NetworkTest, GovernorChargesAndReleasesSendQueueBytes) {
  MemoryGovernor* governor = db_.runtime()->governor();
  Client client = MakeClient();
  ASSERT_TRUE(client.Ping(kRpcTimeout).ok());
  ASSERT_TRUE(client.Query("CREATE TABLE t (v bigint)").ok());
  client.Close();
  // Give the server a beat to reap the closed connection.
  for (int i = 0; i < 400; ++i) {
    if (server_->stats().connections_active == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->stats().connections_active, 0);
  EXPECT_EQ(governor->held(MemoryGovernor::Account::kNetSendQueue), 0)
      << "all queued-frame bytes must be released once queues drain";
}

}  // namespace
}  // namespace streamrel::net
