#include "stream/reorder_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <random>

#include "common/fault_injector.h"
#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;

Row R(int64_t ts) { return Row{Value::Int64(ts)}; }

/// Collects released rows and asserts global ordering.
struct OrderedSink {
  std::vector<int64_t> released;
  ReorderBuffer::Sink Fn() {
    return [this](const std::vector<Row>& rows) {
      for (const Row& row : rows) released.push_back(row[0].AsInt64());
      return Status::OK();
    };
  }
};

TEST(ReorderBufferTest, ReordersWithinSlack) {
  OrderedSink sink;
  ReorderBuffer buffer(5 * kSec, sink.Fn());
  int64_t arrivals[] = {10, 8, 12, 9, 15, 14, 20, 18, 25};
  for (int64_t t : arrivals) {
    ASSERT_TRUE(buffer.Push(t * kSec, R(t * kSec)).ok()) << t;
  }
  ASSERT_TRUE(buffer.Flush().ok());
  std::vector<int64_t> sorted(std::begin(arrivals), std::end(arrivals));
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(sink.released.size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sink.released[i], sorted[i] * kSec);
  }
}

TEST(ReorderBufferTest, TooLateRowsRejected) {
  OrderedSink sink;
  ReorderBuffer buffer(2 * kSec, sink.Fn());
  ASSERT_TRUE(buffer.Push(10 * kSec, R(10)).ok());
  Status late = buffer.Push(7 * kSec, R(7));
  EXPECT_FALSE(late.ok());
  // Exactly at the bound is accepted.
  EXPECT_TRUE(buffer.Push(8 * kSec, R(8)).ok());
}

TEST(ReorderBufferTest, ReleasesAsWatermarkAdvances) {
  OrderedSink sink;
  ReorderBuffer buffer(3 * kSec, sink.Fn());
  ASSERT_TRUE(buffer.Push(1 * kSec, R(1)).ok());
  ASSERT_TRUE(buffer.Push(2 * kSec, R(2)).ok());
  EXPECT_TRUE(sink.released.empty());  // still within slack
  ASSERT_TRUE(buffer.Push(6 * kSec, R(6)).ok());
  // watermark 6s, bound 3s: rows at 1s and 2s release.
  EXPECT_EQ(sink.released.size(), 2u);
  EXPECT_EQ(buffer.buffered_rows(), 1u);
}

TEST(ReorderBufferTest, EqualTimestampsKeepArrivalOrder) {
  std::vector<std::string> order;
  ReorderBuffer buffer(0, [&](const std::vector<Row>& rows) {
    for (const Row& row : rows) order.push_back(row[1].AsString());
    return Status::OK();
  });
  ASSERT_TRUE(buffer.Push(5, Row{Value::Int64(5), Value::String("first")})
                  .ok());
  ASSERT_TRUE(buffer.Push(5, Row{Value::Int64(5), Value::String("second")})
                  .ok());
  ASSERT_TRUE(buffer.Flush().ok());
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
}

TEST(ReorderBufferTest, FeedsRuntimeWithDisorderedSource) {
  // End to end: a shuffled source drives a CQ through the buffer; the
  // result matches an ordered run.
  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db.CreateContinuousQuery(
      "c", "SELECT count(*) FROM s <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());

  ReorderBuffer buffer(10 * kSec, [&](const std::vector<Row>& rows) {
    return db.Ingest("s", rows);
  });

  std::mt19937 rng(7);
  std::vector<int64_t> times;
  for (int i = 0; i < 300; ++i) times.push_back(i * kSec);
  // Local shuffles within a 8-second horizon (less than the slack).
  for (size_t i = 0; i + 1 < times.size(); i += 2) {
    if (rng() % 2 == 0) std::swap(times[i], times[i + 1]);
  }
  for (int64_t t : times) {
    ASSERT_TRUE(
        buffer.Push(t, Row{Value::Int64(t / kSec), Value::Timestamp(t)}).ok());
  }
  ASSERT_TRUE(buffer.Flush().ok());
  ASSERT_TRUE(db.AdvanceTime("s", 300 * kSec).ok());

  ASSERT_EQ(cap.batches.size(), 5u);
  for (const auto& batch : cap.batches) {
    EXPECT_EQ(batch.rows[0][0].AsInt64(), 60);  // every minute complete
  }
  EXPECT_EQ(buffer.rows_released(), 300);
}

TEST(ReorderBufferTest, SinkErrorPropagates) {
  ReorderBuffer buffer(0, [](const std::vector<Row>&) {
    return Status::Internal("sink down");
  });
  Status s = buffer.Push(1, R(1));
  EXPECT_FALSE(s.ok());
}

TEST(ReorderBufferTest, TooLateMessageSaysEarlier) {
  OrderedSink sink;
  ReorderBuffer buffer(2 * kSec, sink.Fn());
  ASSERT_TRUE(buffer.Push(10 * kSec, R(10)).ok());
  Status late = buffer.Push(7 * kSec, R(7));
  ASSERT_FALSE(late.ok());
  // The rejected row is OLDER than the slack bound — the message must say
  // so, not claim the row is "later than" the bound.
  EXPECT_NE(late.message().find("earlier than the slack bound"),
            std::string::npos)
      << late.message();
  EXPECT_EQ(late.message().find("later than"), std::string::npos)
      << late.message();
  EXPECT_EQ(buffer.rows_rejected(), 1);
}

TEST(ReorderBufferTest, FailedSinkReBuffersRows) {
  bool sink_up = false;
  OrderedSink ok_sink;
  ReorderBuffer buffer(0, [&](const std::vector<Row>& rows) {
    if (!sink_up) return Status::Internal("sink down");
    return ok_sink.Fn()(rows);
  });
  EXPECT_FALSE(buffer.Push(1, R(1)).ok());
  // The sink never accepted the row: it must not be counted as released,
  // and — crucially — it must still be buffered, not silently dropped.
  EXPECT_EQ(buffer.rows_released(), 0);
  EXPECT_EQ(buffer.buffered_rows(), 1u);
  EXPECT_EQ(buffer.rows_rejected(), 0);
  // Once the sink recovers, Flush delivers the retained row.
  sink_up = true;
  ASSERT_TRUE(buffer.Flush().ok());
  EXPECT_EQ(buffer.rows_released(), 1);
  EXPECT_EQ(buffer.buffered_rows(), 0u);
  ASSERT_EQ(ok_sink.released.size(), 1u);
  EXPECT_EQ(ok_sink.released[0], 1);
}

TEST(ReorderBufferTest, TransientSinkFaultLosesNoRows) {
  // Regression: a transient fault in the release path used to lose the
  // in-flight rows (they had left the buffer but never reached the sink).
  // Driven deterministically through the fault injector: fail the 2nd
  // release call, then recover.
  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Arm("reorder.sink", FaultPolicy::FailNth(2));
  OrderedSink sink;
  ReorderBuffer buffer(2 * kSec, [&](const std::vector<Row>& rows) {
    RETURN_IF_ERROR(FaultInjector::Instance().Hit("reorder.sink"));
    return sink.Fn()(rows);
  });
  int64_t arrivals[] = {1, 2, 5, 9, 14, 20};
  int64_t pushed = 0;
  for (int64_t t : arrivals) {
    Status s = buffer.Push(t * kSec, R(t * kSec));
    // A sink fault surfaces as an ingest error but must not lose rows.
    if (!s.ok()) EXPECT_EQ(s.code(), StatusCode::kIoError);
    ++pushed;
    EXPECT_EQ(buffer.rows_released() +
                  static_cast<int64_t>(buffer.buffered_rows()) +
                  buffer.rows_rejected(),
              pushed);
  }
  ASSERT_TRUE(buffer.Flush().ok());
  FaultInjector::Instance().Reset();
  // Every pushed row came out, exactly once, in timestamp order.
  ASSERT_EQ(sink.released.size(), std::size(arrivals));
  for (size_t i = 0; i < std::size(arrivals); ++i) {
    EXPECT_EQ(sink.released[i], arrivals[i] * kSec);
  }
}

}  // namespace
}  // namespace streamrel::stream
