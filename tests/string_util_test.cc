#include "common/string_util.h"

#include <gtest/gtest.h>

namespace streamrel {
namespace {

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(ToUpper("MiXeD_123"), "MIXED_123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("a b  c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitWhitespace("  leading and trailing  "),
            (std::vector<std::string>{"leading", "and", "trailing"}));
  EXPECT_EQ(SplitWhitespace("\tone\ntwo\r"),
            (std::vector<std::string>{"one", "two"}));
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace streamrel
