#include "stream/shared_aggregation.h"

#include <gtest/gtest.h>

#include "common/time.h"
#include "exec/operators.h"
#include "sql/parser.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

Schema StreamSchema() {
  return Schema({Column("url", DataType::kString),
                 Column("ts", DataType::kTimestamp),
                 Column("bytes", DataType::kInt64)});
}

exec::BoundExprPtr Bind(const std::string& text) {
  auto ast = sql::ParseExpression(text);
  EXPECT_TRUE(ast.ok());
  Schema schema = StreamSchema();
  exec::ExprBinder binder(schema);
  auto bound = binder.BindScalar(**ast);
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return bound.ok() ? std::move(*bound) : nullptr;
}

exec::AggregateCall Call(const std::string& fn, const std::string& arg) {
  exec::AggregateCall call;
  call.function = fn;
  if (arg == "*") {
    call.star = true;
    call.display_name = fn + "(*)";
  } else {
    call.argument = Bind(arg);
    call.display_name = fn + "(" + arg + ")";
  }
  call.result_type = *exec::InferAggregateType(
      fn, call.star, call.argument ? call.argument->type : DataType::kNull);
  return call;
}

Row R(const std::string& url, int64_t ts, int64_t bytes) {
  return Row{Value::String(url), Value::Timestamp(ts), Value::Int64(bytes)};
}

std::vector<exec::BoundExprPtr> GroupByUrl() {
  std::vector<exec::BoundExprPtr> groups;
  groups.push_back(Bind("url"));
  return groups;
}

TEST(SliceAggregatorTest, BasicGroupedCount) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());

  ASSERT_TRUE(agg.AddRow(10 * kSec, R("/a", 10 * kSec, 100)).ok());
  ASSERT_TRUE(agg.AddRow(20 * kSec, R("/a", 20 * kSec, 100)).ok());
  ASSERT_TRUE(agg.AddRow(30 * kSec, R("/b", 30 * kSec, 100)).ok());

  auto rows = agg.ComputeWindow(kMin, kMin);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  for (const Row& row : *rows) {
    if (row[0].AsString() == "/a") {
      EXPECT_EQ(row[1].AsInt64(), 2);
    } else {
      EXPECT_EQ(row[1].AsInt64(), 1);
    }
  }
}

TEST(SliceAggregatorTest, SlidingWindowMergesSlices) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());

  // One row per minute for 5 minutes.
  for (int m = 0; m < 5; ++m) {
    ASSERT_TRUE(
        agg.AddRow(m * kMin + 30 * kSec, R("/a", m * kMin + 30 * kSec, 1))
            .ok());
  }
  // Window [0, 3min): 3 rows. Window [2min, 5min): 3 rows.
  auto w1 = agg.ComputeWindow(3 * kMin, 3 * kMin);
  ASSERT_TRUE(w1.ok());
  ASSERT_EQ(w1->size(), 1u);
  EXPECT_EQ((*w1)[0][1].AsInt64(), 3);
  auto w2 = agg.ComputeWindow(5 * kMin, 3 * kMin);
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ((*w2)[0][1].AsInt64(), 3);
}

TEST(SliceAggregatorTest, RowAtSliceBoundaryExcludedFromClosingWindow) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());
  ASSERT_TRUE(agg.AddRow(kMin, R("/a", kMin, 1)).ok());  // ts == close
  auto rows = agg.ComputeWindow(kMin, kMin);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());  // belongs to the next window
  auto next = agg.ComputeWindow(2 * kMin, kMin);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->size(), 1u);
}

TEST(SliceAggregatorTest, FilterApplied) {
  SliceAggregator agg(kMin, Bind("bytes > 50"), GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());
  ASSERT_TRUE(agg.AddRow(1, R("/a", 1, 100)).ok());
  ASSERT_TRUE(agg.AddRow(2, R("/a", 2, 10)).ok());  // filtered out
  auto rows = agg.ComputeWindow(kMin, kMin);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 1);
}

TEST(SliceAggregatorTest, UnionAcrossMembers) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> first;
  first.push_back(Call("count", "*"));
  auto m1 = agg.RegisterCalls(std::move(first));
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(*m1, std::vector<size_t>{0});

  // Second member: shares count(*), adds sum(bytes).
  std::vector<exec::AggregateCall> second;
  second.push_back(Call("sum", "bytes"));
  second.push_back(Call("count", "*"));
  auto m2 = agg.RegisterCalls(std::move(second));
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(*m2, (std::vector<size_t>{1, 0}));
  EXPECT_EQ(agg.union_call_count(), 2u);

  ASSERT_TRUE(agg.AddRow(1, R("/a", 1, 10)).ok());
  ASSERT_TRUE(agg.AddRow(2, R("/a", 2, 20)).ok());
  auto rows = agg.ComputeWindow(kMin, kMin);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 2);   // count(*) at union slot 0
  EXPECT_EQ((*rows)[0][2].AsInt64(), 30);  // sum(bytes) at union slot 1
}

TEST(SliceAggregatorTest, NoBackfillForLiveAggregator) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> first;
  first.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(first)).ok());
  ASSERT_TRUE(agg.AddRow(1, R("/a", 1, 1)).ok());

  std::vector<exec::AggregateCall> late;
  late.push_back(Call("sum", "bytes"));
  EXPECT_FALSE(agg.CanAccept(late));
  EXPECT_FALSE(agg.RegisterCalls(std::move(late)).ok());

  // An existing aggregate is still accepted.
  std::vector<exec::AggregateCall> same;
  same.push_back(Call("count", "*"));
  EXPECT_TRUE(agg.CanAccept(same));
  EXPECT_TRUE(agg.RegisterCalls(std::move(same)).ok());
}

TEST(SliceAggregatorTest, ScalarAggregationEmptyWindow) {
  SliceAggregator agg(kMin, nullptr, {});
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());
  auto rows = agg.ComputeWindow(kMin, kMin);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 0);
}

TEST(SliceAggregatorTest, EvictionDropsOldSlices) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());
  agg.NoteWindowVisible(2 * kMin);
  for (int m = 0; m < 10; ++m) {
    ASSERT_TRUE(agg.AddRow(m * kMin, R("/a", m * kMin, 1)).ok());
  }
  EXPECT_EQ(agg.live_slices(), 10u);
  agg.EvictBefore(10 * kMin - agg.max_visible());
  EXPECT_LE(agg.live_slices(), 2u);
  // The last window still computes correctly from the remaining slices.
  auto rows = agg.ComputeWindow(10 * kMin, 2 * kMin);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsInt64(), 2);
}

TEST(SliceAggregatorTest, MisalignedWindowIsInternalError) {
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("count", "*"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());
  EXPECT_FALSE(agg.ComputeWindow(kMin, 90 * kSec).ok());
}

TEST(SliceAggregatorTest, MultipleWindowWidthsShareOnePipeline) {
  // Two members: 1-minute and 3-minute windows over the same slices.
  SliceAggregator agg(kMin, nullptr, GroupByUrl());
  std::vector<exec::AggregateCall> calls;
  calls.push_back(Call("sum", "bytes"));
  ASSERT_TRUE(agg.RegisterCalls(std::move(calls)).ok());
  for (int m = 0; m < 3; ++m) {
    ASSERT_TRUE(
        agg.AddRow(m * kMin + kSec, R("/a", m * kMin + kSec, m + 1)).ok());
  }
  auto narrow = agg.ComputeWindow(3 * kMin, kMin);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ((*narrow)[0][1].AsInt64(), 3);  // last minute only
  auto wide = agg.ComputeWindow(3 * kMin, 3 * kMin);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ((*wide)[0][1].AsInt64(), 6);  // all three
}

}  // namespace
}  // namespace streamrel::stream
