// Differential testing: randomly generated queries over randomly generated
// tables, executed by the engine and by a deliberately naive reference
// evaluator written directly against the raw rows. Any divergence is a bug
// in the planner, binder, or executor.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "test_util.h"

namespace streamrel {
namespace {

struct Dataset {
  // t(k bigint, v bigint, s varchar) with occasional NULL v.
  std::vector<std::tuple<int64_t, std::optional<int64_t>, std::string>> rows;
};

Dataset MakeDataset(std::mt19937* rng, int n) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    std::optional<int64_t> v;
    if ((*rng)() % 8 != 0) {
      v = static_cast<int64_t>((*rng)() % 200) - 100;
    }
    data.rows.emplace_back(static_cast<int64_t>((*rng)() % 10), v,
                           "s" + std::to_string((*rng)() % 5));
  }
  return data;
}

void Load(engine::Database* db, const Dataset& data) {
  MustExecute(db, "CREATE TABLE t (k bigint, v bigint, s varchar)");
  if (data.rows.empty()) return;
  std::string insert = "INSERT INTO t VALUES ";
  for (size_t i = 0; i < data.rows.size(); ++i) {
    const auto& [k, v, s] = data.rows[i];
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(k) + ", " +
              (v.has_value() ? std::to_string(*v) : "NULL") + ", '" + s +
              "')";
  }
  MustExecute(db, insert);
}

/// Normalizes a result to sorted strings (queries below are order-free or
/// explicitly sorted identically on both sides).
std::vector<std::string> Normalize(const engine::QueryResult& result) {
  auto out = RowStrings(result);
  std::sort(out.begin(), out.end());
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, FilterCountSumAgree) {
  std::mt19937 rng(GetParam() * 7919);
  Dataset data = MakeDataset(&rng, 120 + static_cast<int>(rng() % 200));
  engine::Database db;
  Load(&db, data);

  for (int trial = 0; trial < 10; ++trial) {
    int64_t threshold = static_cast<int64_t>(rng() % 200) - 100;
    // Engine.
    auto engine_result = MustExecute(
        &db, "SELECT k, count(*), count(v), sum(v) FROM t WHERE v >= " +
                 std::to_string(threshold) + " GROUP BY k");
    // Reference.
    struct Agg {
      int64_t n = 0;
      int64_t nv = 0;
      int64_t sum = 0;
      bool any = false;
    };
    std::map<int64_t, Agg> reference;
    for (const auto& [k, v, s] : data.rows) {
      if (!v.has_value() || *v < threshold) continue;  // NULL >= x is UNKNOWN
      Agg& a = reference[k];
      a.n += 1;
      a.nv += 1;
      a.sum += *v;
      a.any = true;
    }
    std::vector<std::string> expected;
    for (const auto& [k, a] : reference) {
      expected.push_back("(" + std::to_string(k) + ", " +
                         std::to_string(a.n) + ", " + std::to_string(a.nv) +
                         ", " + std::to_string(a.sum) + ")");
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(Normalize(engine_result), expected)
        << "threshold " << threshold;
  }
}

TEST_P(DifferentialTest, StringPredicatesAgree) {
  std::mt19937 rng(GetParam() * 104729);
  Dataset data = MakeDataset(&rng, 150);
  engine::Database db;
  Load(&db, data);

  for (int s_id = 0; s_id < 5; ++s_id) {
    std::string needle = "s" + std::to_string(s_id);
    auto engine_result = MustExecute(
        &db, "SELECT count(*) FROM t WHERE s = '" + needle +
                 "' OR (s LIKE 's%' AND k < 3)");
    int64_t expected = 0;
    for (const auto& [k, v, s] : data.rows) {
      if (s == needle || (s.rfind("s", 0) == 0 && k < 3)) ++expected;
    }
    EXPECT_EQ(engine_result.rows[0][0].AsInt64(), expected) << needle;
  }
}

TEST_P(DifferentialTest, MinMaxAvgDistinctAgree) {
  std::mt19937 rng(GetParam() * 31337);
  Dataset data = MakeDataset(&rng, 200);
  engine::Database db;
  Load(&db, data);

  auto engine_result = MustExecute(
      &db,
      "SELECT min(v), max(v), count(distinct v), count(distinct s) FROM t");
  std::optional<int64_t> lo, hi;
  std::set<int64_t> distinct_v;
  std::set<std::string> distinct_s;
  for (const auto& [k, v, s] : data.rows) {
    distinct_s.insert(s);
    if (!v.has_value()) continue;
    distinct_v.insert(*v);
    if (!lo || *v < *lo) lo = *v;
    if (!hi || *v > *hi) hi = *v;
  }
  const Row& row = engine_result.rows[0];
  if (lo.has_value()) {
    EXPECT_EQ(row[0].AsInt64(), *lo);
    EXPECT_EQ(row[1].AsInt64(), *hi);
  } else {
    EXPECT_TRUE(row[0].is_null());
  }
  EXPECT_EQ(row[2].AsInt64(), static_cast<int64_t>(distinct_v.size()));
  EXPECT_EQ(row[3].AsInt64(), static_cast<int64_t>(distinct_s.size()));
}

TEST_P(DifferentialTest, JoinAgreesWithNestedLoops) {
  std::mt19937 rng(GetParam() * 271);
  engine::Database db;
  MustExecute(&db, "CREATE TABLE a (k bigint, x bigint)");
  MustExecute(&db, "CREATE TABLE b (k bigint, y bigint)");
  std::vector<std::pair<int64_t, int64_t>> ra, rb;
  std::string ia = "INSERT INTO a VALUES ", ib = "INSERT INTO b VALUES ";
  for (int i = 0; i < 60; ++i) {
    ra.emplace_back(static_cast<int64_t>(rng() % 8), i);
    if (i > 0) ia += ", ";
    ia += "(" + std::to_string(ra.back().first) + ", " + std::to_string(i) +
          ")";
  }
  for (int i = 0; i < 40; ++i) {
    rb.emplace_back(static_cast<int64_t>(rng() % 8), i * 2);
    if (i > 0) ib += ", ";
    ib += "(" + std::to_string(rb.back().first) + ", " +
          std::to_string(i * 2) + ")";
  }
  MustExecute(&db, ia);
  MustExecute(&db, ib);

  auto engine_result = MustExecute(
      &db, "SELECT a.x, b.y FROM a, b WHERE a.k = b.k AND a.x < b.y");
  std::vector<std::string> expected;
  for (const auto& [ka, x] : ra) {
    for (const auto& [kb, y] : rb) {
      if (ka == kb && x < y) {
        expected.push_back("(" + std::to_string(x) + ", " +
                           std::to_string(y) + ")");
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Normalize(engine_result), expected);

  // The same join answered through an index produces identical rows.
  MustExecute(&db, "CREATE INDEX b_k ON b (k)");
  auto indexed = MustExecute(
      &db, "SELECT a.x, b.y FROM a, b WHERE a.k = b.k AND a.x < b.y");
  EXPECT_EQ(Normalize(indexed), expected);
}

TEST_P(DifferentialTest, OrderLimitAgree) {
  std::mt19937 rng(GetParam() * 65537);
  Dataset data = MakeDataset(&rng, 100);
  engine::Database db;
  Load(&db, data);

  auto engine_result = MustExecute(
      &db, "SELECT k, v FROM t WHERE v IS NOT NULL "
           "ORDER BY v DESC, k ASC LIMIT 7");
  std::vector<std::pair<int64_t, int64_t>> reference;  // (v, k)
  for (const auto& [k, v, s] : data.rows) {
    if (v.has_value()) reference.emplace_back(*v, k);
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  size_t expect_n = std::min<size_t>(7, reference.size());
  ASSERT_EQ(engine_result.rows.size(), expect_n);
  for (size_t i = 0; i < expect_n; ++i) {
    EXPECT_EQ(engine_result.rows[i][0].AsInt64(), reference[i].second);
    EXPECT_EQ(engine_result.rows[i][1].AsInt64(), reference[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace streamrel
