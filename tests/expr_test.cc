#include "exec/expr.h"

#include <gtest/gtest.h>

#include "exec/binder.h"
#include "sql/parser.h"

namespace streamrel::exec {
namespace {

/// Parses and binds `text` against a fixed schema, then evaluates it on
/// `row`.
class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest()
      : schema_({Column("i", DataType::kInt64),
                 Column("d", DataType::kDouble),
                 Column("s", DataType::kString),
                 Column("b", DataType::kBool),
                 Column("n", DataType::kInt64),
                 Column("ts", DataType::kTimestamp)}) {}

  Result<Value> Eval(const std::string& text, bool in_window = false) {
    auto ast = sql::ParseExpression(text);
    if (!ast.ok()) return ast.status();
    ExprBinder binder(schema_);
    auto bound = binder.BindScalar(**ast);
    if (!bound.ok()) return bound.status();
    EvalContext ctx;
    ctx.has_window = in_window;
    ctx.window_close_micros = 42'000'000;
    Row row = {Value::Int64(10),      Value::Double(2.5),
               Value::String("Mix"),  Value::Bool(true),
               Value::Null(),         Value::Timestamp(1'000'000)};
    return (*bound)->Eval(row, ctx);
  }

  Value MustEval(const std::string& text) {
    auto r = Eval(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? *r : Value::Null();
  }

  Schema schema_;
};

TEST_F(ExprEvalTest, ColumnsAndLiterals) {
  EXPECT_EQ(MustEval("i").AsInt64(), 10);
  EXPECT_EQ(MustEval("42").AsInt64(), 42);
  EXPECT_EQ(MustEval("'abc'").AsString(), "abc");
  EXPECT_TRUE(MustEval("null").is_null());
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(MustEval("i + 5").AsInt64(), 15);
  EXPECT_EQ(MustEval("i * 2 - 1").AsInt64(), 19);
  EXPECT_DOUBLE_EQ(MustEval("d * 4").AsDouble(), 10.0);
  EXPECT_EQ(MustEval("i / 3").AsInt64(), 3);
  EXPECT_EQ(MustEval("i % 3").AsInt64(), 1);
  EXPECT_EQ(MustEval("-i").AsInt64(), -10);
}

TEST_F(ExprEvalTest, DivisionByZeroIsRuntimeError) {
  auto r = Eval("i / (i - 10)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(MustEval("i = 10").AsBool());
  EXPECT_TRUE(MustEval("i <> 11").AsBool());
  EXPECT_TRUE(MustEval("i < 11").AsBool());
  EXPECT_TRUE(MustEval("i >= 10").AsBool());
  EXPECT_FALSE(MustEval("i > 10").AsBool());
  EXPECT_TRUE(MustEval("d < i").AsBool());  // cross-type numeric
  EXPECT_TRUE(MustEval("s = 'Mix'").AsBool());
}

TEST_F(ExprEvalTest, ThreeValuedLogic) {
  EXPECT_TRUE(MustEval("n = 1").is_null());
  EXPECT_TRUE(MustEval("n + 1").is_null());
  // false AND NULL = false; true OR NULL = true.
  EXPECT_FALSE(MustEval("1 = 2 AND n = 1").AsBool());
  EXPECT_TRUE(MustEval("1 = 1 OR n = 1").AsBool());
  // true AND NULL = NULL; false OR NULL = NULL.
  EXPECT_TRUE(MustEval("1 = 1 AND n = 1").is_null());
  EXPECT_TRUE(MustEval("1 = 2 OR n = 1").is_null());
  EXPECT_TRUE(MustEval("NOT (n = 1)").is_null());
}

TEST_F(ExprEvalTest, IsNull) {
  EXPECT_TRUE(MustEval("n IS NULL").AsBool());
  EXPECT_FALSE(MustEval("i IS NULL").AsBool());
  EXPECT_TRUE(MustEval("i IS NOT NULL").AsBool());
}

TEST_F(ExprEvalTest, InList) {
  EXPECT_TRUE(MustEval("i IN (5, 10, 15)").AsBool());
  EXPECT_FALSE(MustEval("i IN (5, 15)").AsBool());
  EXPECT_TRUE(MustEval("i NOT IN (5, 15)").AsBool());
  // Unknown with NULL in list and no match.
  EXPECT_TRUE(MustEval("i IN (5, n)").is_null());
  // Match wins over NULL.
  EXPECT_TRUE(MustEval("i IN (10, n)").AsBool());
}

TEST_F(ExprEvalTest, Between) {
  EXPECT_TRUE(MustEval("i BETWEEN 5 AND 15").AsBool());
  EXPECT_FALSE(MustEval("i BETWEEN 11 AND 15").AsBool());
  EXPECT_TRUE(MustEval("i NOT BETWEEN 11 AND 15").AsBool());
  EXPECT_TRUE(MustEval("i BETWEEN n AND 15").is_null());
}

TEST_F(ExprEvalTest, Like) {
  EXPECT_TRUE(MustEval("s LIKE 'M%'").AsBool());
  EXPECT_TRUE(MustEval("s LIKE '%ix'").AsBool());
  EXPECT_TRUE(MustEval("s LIKE 'M_x'").AsBool());
  EXPECT_FALSE(MustEval("s LIKE 'm%'").AsBool());  // case-sensitive
  EXPECT_TRUE(MustEval("s NOT LIKE 'z%'").AsBool());
}

TEST_F(ExprEvalTest, CaseExpression) {
  EXPECT_EQ(MustEval("CASE WHEN i > 5 THEN 'big' ELSE 'small' END").AsString(),
            "big");
  EXPECT_EQ(MustEval("CASE WHEN i > 50 THEN 'big' ELSE 'small' END")
                .AsString(),
            "small");
  EXPECT_TRUE(MustEval("CASE WHEN i > 50 THEN 'big' END").is_null());
  // First matching WHEN wins.
  EXPECT_EQ(
      MustEval("CASE WHEN i > 1 THEN 'a' WHEN i > 2 THEN 'b' END").AsString(),
      "a");
}

TEST_F(ExprEvalTest, Cast) {
  EXPECT_EQ(MustEval("CAST(d AS bigint)").AsInt64(), 2);
  EXPECT_EQ(MustEval("CAST(i AS varchar)").AsString(), "10");
  EXPECT_EQ(MustEval("'1 week'::interval").type(), DataType::kInterval);
}

TEST_F(ExprEvalTest, ScalarFunctions) {
  EXPECT_EQ(MustEval("lower(s)").AsString(), "mix");
  EXPECT_EQ(MustEval("upper(s)").AsString(), "MIX");
  EXPECT_EQ(MustEval("length(s)").AsInt64(), 3);
  EXPECT_EQ(MustEval("substr(s, 2)").AsString(), "ix");
  EXPECT_EQ(MustEval("substr(s, 1, 2)").AsString(), "Mi");
  EXPECT_EQ(MustEval("abs(-7)").AsInt64(), 7);
  EXPECT_DOUBLE_EQ(MustEval("round(2.567, 1)").AsDouble(), 2.6);
  EXPECT_DOUBLE_EQ(MustEval("floor(d)").AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(MustEval("ceil(d)").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(MustEval("sqrt(16)").AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(MustEval("power(2, 10)").AsDouble(), 1024.0);
  EXPECT_EQ(MustEval("coalesce(n, i, 99)").AsInt64(), 10);
  EXPECT_TRUE(MustEval("nullif(i, 10)").is_null());
  EXPECT_EQ(MustEval("greatest(1, 5, 3)").AsInt64(), 5);
  EXPECT_EQ(MustEval("least(4, 2, 9)").AsInt64(), 2);
  EXPECT_EQ(MustEval("concat('a', 1, 'b')").AsString(), "a1b");
}

TEST_F(ExprEvalTest, DateTrunc) {
  // ts = 1970-01-01 00:00:01.
  auto r = MustEval("date_trunc('minute', ts)");
  EXPECT_EQ(r.AsTimestampMicros(), 0);
}

TEST_F(ExprEvalTest, ConcatOperator) {
  EXPECT_EQ(MustEval("s || '!'").AsString(), "Mix!");
  EXPECT_TRUE(MustEval("s || n").is_null());
}

TEST_F(ExprEvalTest, CqCloseRequiresWindow) {
  auto outside = Eval("cq_close(*)", /*in_window=*/false);
  // Bare cq_close() (no args) binds; with a window ctx it works.
  auto ast = sql::ParseExpression("cq_close()");
  ASSERT_TRUE(ast.ok());
  ExprBinder binder(schema_);
  auto bound = binder.BindScalar(**ast);
  ASSERT_TRUE(bound.ok());
  EvalContext no_window;
  Row row;
  EXPECT_FALSE((*bound)->Eval(row, no_window).ok());
  EvalContext windowed;
  windowed.has_window = true;
  windowed.window_close_micros = 1234;
  auto v = (*bound)->Eval(row, windowed);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsTimestampMicros(), 1234);
}

TEST_F(ExprEvalTest, UnknownFunctionIsBindError) {
  auto r = Eval("no_such_fn(i)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(ExprEvalTest, UnknownColumnIsBindError) {
  auto r = Eval("zzz + 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_FALSE(LikeMatch("hello", ""));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));  // % in text matches literally via %
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));  // backtracking
}

TEST(PredicateTest, NullRejects) {
  BoundExpr lit(BoundExprKind::kLiteral);
  lit.literal = Value::Null();
  EvalContext ctx;
  Row row;
  auto r = EvalPredicate(lit, row, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

}  // namespace
}  // namespace streamrel::exec
