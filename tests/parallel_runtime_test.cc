// Serial-vs-parallel differential testing for the partitioned runtime:
// the same randomized workload is replayed at PARALLELISM 1, 2, and 4, and
// every observable output — each CQ's per-window delivery (close time, row
// contents, row order) and the final active-table state — must be
// byte-identical across the three runs. Workloads mix CQTIME USER and
// CQTIME SYSTEM streams, out-of-order arrivals within a reorder slack,
// several CQs sharing one slice pipeline, grouped/scalar/filtered shapes,
// and a channel into an active table. Aggregates stick to integer inputs so
// results are exact regardless of merge order; group *order* in unsorted
// CQ output still must match serial first-arrival order exactly.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/time.h"
#include "stream/reorder_buffer.h"
#include "test_util.h"

namespace streamrel {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;

/// Everything observable from one workload run, rendered to strings.
struct Transcript {
  std::vector<std::string> events;   // CQ deliveries, in delivery order
  std::vector<std::string> archive;  // final active-table contents
};

void CaptureCq(engine::Database* db, const std::string& name,
               const std::string& sql, Transcript* out) {
  auto cq = db->CreateContinuousQuery(name, sql);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  (*cq)->AddCallback(
      [out, name](int64_t close, const std::vector<Row>& rows) {
        for (const Row& row : rows) {
          out->events.push_back(name + "@" + std::to_string(close) + ": " +
                                RowToString(row));
        }
        return Status::OK();
      });
}

/// Replays the seed's workload at the given parallelism level. Void so
/// ASSERT_* can abort the run; check HasFatalFailure() after calling.
void RunWorkload(int seed, int parallelism, Transcript* transcript) {
  std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 17);
  Transcript& out = *transcript;
  engine::Database db;

  // Half the seeds set parallelism before any object exists (workers see
  // pipelines appear later); the other half re-shard live pipelines.
  const bool set_early = rng() % 2 == 0;
  const std::string set_sql = "SET PARALLELISM " + std::to_string(parallelism);
  if (set_early) MustExecute(&db, set_sql);

  MustExecute(&db,
              "CREATE STREAM clicks (url varchar, ts timestamp CQTIME USER, "
              "bytes bigint)");
  MustExecute(&db,
              "CREATE STREAM sysload (ts timestamp CQTIME SYSTEM, "
              "host varchar, cpu bigint)");

  // Two CQs sharing one slice pipeline (same window/group signature); the
  // second has no ORDER BY, so its group order must reproduce the serial
  // first-arrival order.
  CaptureCq(&db, "cq_url",
            "SELECT url, count(*), sum(bytes), min(bytes), max(bytes) "
            "FROM clicks <VISIBLE '1 minute' ADVANCE '20 seconds'> "
            "GROUP BY url ORDER BY url",
            &out);
  CaptureCq(&db, "cq_url_unordered",
            "SELECT url, count(*) "
            "FROM clicks <VISIBLE '1 minute' ADVANCE '20 seconds'> "
            "GROUP BY url",
            &out);
  // Scalar aggregate: no group key, so parallel runs round-robin rows and
  // depend entirely on merge-at-close.
  CaptureCq(&db, "cq_total",
            "SELECT count(*), sum(bytes) FROM clicks <VISIBLE '1 minute'>",
            &out);
  const int64_t threshold = static_cast<int64_t>(rng() % 800);
  CaptureCq(&db, "cq_big",
            "SELECT url, count(*) FROM clicks <VISIBLE '40 seconds'> "
            "WHERE bytes > " + std::to_string(threshold) +
            " GROUP BY url ORDER BY url",
            &out);
  // System-time stream with avg (merged as sum+count).
  CaptureCq(&db, "cq_host",
            "SELECT host, count(*), sum(cpu), avg(cpu) "
            "FROM sysload <VISIBLE '30 seconds'> "
            "GROUP BY host ORDER BY host",
            &out);

  // Channel: derived per-minute counts flow into an active table.
  MustExecute(&db,
              "CREATE STREAM url_counts AS SELECT url, count(*) AS c, "
              "cq_close(*) AS w FROM clicks <VISIBLE '1 minute'> "
              "GROUP BY url");
  MustExecute(&db,
              "CREATE TABLE archive (url varchar, c bigint, w timestamp)");
  MustExecute(&db, "CREATE CHANNEL ch FROM url_counts INTO archive APPEND");

  if (!set_early) MustExecute(&db, set_sql);

  // Quarantine observability: malformed rows injected below are diverted
  // to the dead-letter stream; its contents (reason, detail, row text) are
  // part of the transcript and must match across parallelism levels, since
  // the quarantine decision is made on the coordinator.
  ASSERT_TRUE(db.runtime()->EnsureQuarantineStream("clicks").ok());
  ASSERT_TRUE(db.runtime()
                  ->SubscribeStream(
                      stream::StreamRuntime::QuarantineName("clicks"),
                      [&out](int64_t, const std::vector<Row>& rows) {
                        for (const Row& row : rows) {
                          out.events.push_back("quarantine: " +
                                               RowToString(row));
                        }
                        return Status::OK();
                      })
                  .ok());

  // Clicks arrive nearly ordered; a slack buffer restores order before
  // ingest, exactly as a real collector front-end would.
  const int64_t slack = 15 * kSec;
  stream::ReorderBuffer reorder(
      slack, [&db](const std::vector<Row>& ordered) {
        return db.Ingest("clicks", ordered);
      });

  const int n_clicks = 80 + static_cast<int>(rng() % 80);
  const int n_sys_batches = 25 + static_cast<int>(rng() % 20);
  const bool reshard_midstream = rng() % 3 == 0;

  int64_t click_base = 5 * kSec;
  int64_t sys_time = 2 * kSec;
  int sys_sent = 0;
  for (int i = 0; i < n_clicks; ++i) {
    click_base += static_cast<int64_t>(rng() % (4 * kSec));
    // Jitter backwards within the slack bound: out-of-order at the source,
    // ordered again by the reorder buffer.
    int64_t jitter = static_cast<int64_t>(rng() % (10 * kSec));
    int64_t ts = std::max<int64_t>(0, click_base - jitter);
    Row row{Value::String("u" + std::to_string(rng() % 7)),
            Value::Timestamp(ts),
            Value::Int64(static_cast<int64_t>(rng() % 1000))};
    Status pushed = reorder.Push(ts, std::move(row));
    ASSERT_TRUE(pushed.ok()) << pushed.ToString();

    // A sprinkle of malformed rows, ingested directly (not through the
    // reorder buffer, which needs a timestamp): wrong arity, NULL CQTIME,
    // or a mis-typed CQTIME column. Each is quarantined, never an error,
    // and never perturbs the admitted-row outputs.
    if (rng() % 9 == 0) {
      Row bad;
      switch (rng() % 3) {
        case 0:
          bad = Row{Value::String("torn")};
          break;
        case 1:
          bad = Row{Value::String("u1"), Value::Null(), Value::Int64(1)};
          break;
        default:
          bad = Row{Value::String("u2"), Value::String("not-a-time"),
                    Value::Int64(2)};
          break;
      }
      Status st = db.Ingest("clicks", {std::move(bad)});
      ASSERT_TRUE(st.ok()) << st.ToString();
    }

    // Interleave a system-time batch roughly every third click.
    if (rng() % 3 == 0 && sys_sent < n_sys_batches) {
      sys_time += static_cast<int64_t>(rng() % (3 * kSec));
      std::vector<Row> batch;
      const int batch_rows = 1 + static_cast<int>(rng() % 3);
      for (int b = 0; b < batch_rows; ++b) {
        batch.push_back(Row{Value::Null(),
                            Value::String("h" + std::to_string(rng() % 4)),
                            Value::Int64(static_cast<int64_t>(rng() % 100))});
      }
      Status st = db.Ingest("sysload", batch, sys_time);
      ASSERT_TRUE(st.ok()) << st.ToString();
      ++sys_sent;
    }

    // Mid-stream re-shard on some seeds: fold shard state back into the
    // parents and split it again (a no-op transcript-wise).
    if (reshard_midstream && i == n_clicks / 2) {
      MustExecute(&db, "SET PARALLELISM 1");
      MustExecute(&db, set_sql);
    }
  }
  ASSERT_TRUE(reorder.Flush().ok());

  // Close every trailing window on both streams.
  const int64_t end = click_base + 2 * kMicrosPerMinute;
  ASSERT_TRUE(db.AdvanceTime("clicks", end).ok());
  ASSERT_TRUE(db.AdvanceTime("sysload", sys_time + kMicrosPerMinute).ok());

  out.archive =
      RowStrings(MustExecute(&db, "SELECT url, c, w FROM archive "
                                  "ORDER BY w, url"));

  // Admission accounting is part of the observable surface too.
  auto counters = db.runtime()->overload_counters("clicks");
  out.events.push_back(
      "clicks admitted=" + std::to_string(counters.rows_admitted) +
      " quarantined=" + std::to_string(counters.rows_quarantined) +
      " shed=" + std::to_string(counters.rows_shed));
}

class ParallelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDifferentialTest, SerialAndParallelRunsAgree) {
  const int seed = GetParam();
  SCOPED_TRACE("failing seed: " + std::to_string(seed));
  Transcript serial;
  RunWorkload(seed, 1, &serial);
  if (HasFatalFailure()) return;
  ASSERT_FALSE(serial.events.empty());
  for (int parallelism : {2, 4}) {
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    Transcript parallel;
    RunWorkload(seed, parallelism, &parallel);
    if (HasFatalFailure()) return;
    EXPECT_EQ(serial.events, parallel.events);
    EXPECT_EQ(serial.archive, parallel.archive);
  }
}

// 200+ seeds: the acceptance bar for the partitioned runtime. Each seed
// varies row counts, timestamps, jitter, filter thresholds, and whether
// parallelism is set before or after CQ creation (plus mid-stream
// re-sharding on a third of seeds).
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Range(0, 210));

TEST(SetParallelismTest, RejectsOutOfRangeValues) {
  engine::Database db;
  EXPECT_FALSE(db.Execute("SET PARALLELISM 0").ok());
  EXPECT_FALSE(db.Execute("SET PARALLELISM -3").ok());
  EXPECT_FALSE(db.Execute("SET PARALLELISM 1000").ok());
  EXPECT_FALSE(db.Execute("SET FROBNICATION 2").ok());
  EXPECT_TRUE(db.Execute("SET PARALLELISM 2").ok());
  EXPECT_EQ(db.runtime()->parallelism(), 2);
  EXPECT_TRUE(db.Execute("SET PARALLELISM 1").ok());
  EXPECT_EQ(db.runtime()->parallelism(), 1);
}

TEST(SetParallelismTest, ShardMetricsAppearUnderShardScope) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (url varchar, ts timestamp CQTIME USER)");
  auto cq = db.CreateContinuousQuery(
      "c", "SELECT url, count(*) FROM s <VISIBLE '1 minute'> GROUP BY url");
  ASSERT_TRUE(cq.ok());
  MustExecute(&db, "SET PARALLELISM 2");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::String("u" + std::to_string(i % 5)),
                                    Value::Timestamp(i * kSec)}})
                    .ok());
  }
  auto stats = MustExecute(&db, "SHOW STATS");
  int64_t shard_rows = 0;
  bool saw_worker0 = false, saw_worker1 = false, saw_parallelism = false;
  for (const Row& row : stats.rows) {
    if (row[0].AsString() == "shard") {
      if (row[1].AsString() == "worker0") saw_worker0 = true;
      if (row[1].AsString() == "worker1") saw_worker1 = true;
      if (row[2].AsString() == "rows_absorbed") shard_rows += row[3].AsInt64();
    }
    if (row[0].AsString() == "engine" && row[2].AsString() == "parallelism") {
      saw_parallelism = true;
      EXPECT_EQ(row[3].AsInt64(), 2);
    }
  }
  EXPECT_TRUE(saw_worker0);
  EXPECT_TRUE(saw_worker1);
  EXPECT_TRUE(saw_parallelism);
  // Every ingested row was absorbed by exactly one worker shard.
  EXPECT_EQ(shard_rows, 50);

  // Dropping back to serial removes the worker objects from SHOW STATS.
  MustExecute(&db, "SET PARALLELISM 1");
  stats = MustExecute(&db, "SHOW STATS");
  for (const Row& row : stats.rows) {
    EXPECT_NE(row[0].AsString(), "shard");
  }
}

}  // namespace
}  // namespace streamrel
