#include "common/time.h"

#include <gtest/gtest.h>

namespace streamrel {
namespace {

TEST(TimestampTest, ParseDateOnly) {
  auto r = ParseTimestampMicros("1970-01-01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0);
}

TEST(TimestampTest, ParseDateTime) {
  auto r = ParseTimestampMicros("1970-01-02 00:00:01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, kMicrosPerDay + kMicrosPerSecond);
}

TEST(TimestampTest, ParseFractionalSeconds) {
  auto r = ParseTimestampMicros("1970-01-01 00:00:00.250000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 250000);
  auto r2 = ParseTimestampMicros("1970-01-01 00:00:00.5");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 500000);
}

TEST(TimestampTest, ParseTSeparator) {
  auto r = ParseTimestampMicros("2009-01-05T09:00:00");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(FormatTimestampMicros(*r), "2009-01-05 09:00:00");
}

TEST(TimestampTest, RejectsGarbage) {
  EXPECT_FALSE(ParseTimestampMicros("not a date").ok());
  EXPECT_FALSE(ParseTimestampMicros("2009-13-01").ok());
  EXPECT_FALSE(ParseTimestampMicros("2009-01-05 25:00:00").ok());
  EXPECT_FALSE(ParseTimestampMicros("2009-01-05 09:00:00x").ok());
}

TEST(TimestampTest, FormatRoundTrip) {
  const char* cases[] = {"2009-01-05 09:00:00", "1999-12-31 23:59:59",
                         "2026-07-06 00:00:00", "1970-01-01 00:00:00"};
  for (const char* text : cases) {
    auto micros = ParseTimestampMicros(text);
    ASSERT_TRUE(micros.ok()) << text;
    EXPECT_EQ(FormatTimestampMicros(*micros), text);
  }
}

TEST(TimestampTest, PreEpochFormat) {
  auto micros = ParseTimestampMicros("1969-12-31 23:00:00");
  ASSERT_TRUE(micros.ok());
  EXPECT_LT(*micros, 0);
  EXPECT_EQ(FormatTimestampMicros(*micros), "1969-12-31 23:00:00");
}

TEST(TimestampTest, LeapYearDay) {
  auto micros = ParseTimestampMicros("2008-02-29 12:00:00");
  ASSERT_TRUE(micros.ok());
  EXPECT_EQ(FormatTimestampMicros(*micros), "2008-02-29 12:00:00");
}

TEST(IntervalTest, ParseSingleUnit) {
  EXPECT_EQ(*ParseIntervalMicros("5 minutes"), 5 * kMicrosPerMinute);
  EXPECT_EQ(*ParseIntervalMicros("1 minute"), kMicrosPerMinute);
  EXPECT_EQ(*ParseIntervalMicros("1 week"), kMicrosPerWeek);
  EXPECT_EQ(*ParseIntervalMicros("30 seconds"), 30 * kMicrosPerSecond);
  EXPECT_EQ(*ParseIntervalMicros("250 milliseconds"), 250 * kMicrosPerMilli);
  EXPECT_EQ(*ParseIntervalMicros("2 hours"), 2 * kMicrosPerHour);
  EXPECT_EQ(*ParseIntervalMicros("3 days"), 3 * kMicrosPerDay);
}

TEST(IntervalTest, ParseCompound) {
  EXPECT_EQ(*ParseIntervalMicros("1 hour 30 minutes"),
            kMicrosPerHour + 30 * kMicrosPerMinute);
}

TEST(IntervalTest, ParseCaseInsensitiveUnits) {
  EXPECT_EQ(*ParseIntervalMicros("5 MINUTES"), 5 * kMicrosPerMinute);
}

TEST(IntervalTest, ParseFractionalQuantity) {
  EXPECT_EQ(*ParseIntervalMicros("0.5 seconds"), kMicrosPerSecond / 2);
}

TEST(IntervalTest, RejectsGarbage) {
  EXPECT_FALSE(ParseIntervalMicros("").ok());
  EXPECT_FALSE(ParseIntervalMicros("5").ok());
  EXPECT_FALSE(ParseIntervalMicros("five minutes").ok());
  EXPECT_FALSE(ParseIntervalMicros("5 fortnights").ok());
}

TEST(IntervalTest, FormatPicksLargestExactUnit) {
  EXPECT_EQ(FormatIntervalMicros(5 * kMicrosPerMinute), "5 minutes");
  EXPECT_EQ(FormatIntervalMicros(kMicrosPerMinute), "1 minute");
  EXPECT_EQ(FormatIntervalMicros(90 * kMicrosPerSecond), "90 seconds");
  EXPECT_EQ(FormatIntervalMicros(0), "0 seconds");
  EXPECT_EQ(FormatIntervalMicros(kMicrosPerWeek), "1 week");
}

TEST(IntervalTest, FormatParsesBack) {
  int64_t cases[] = {1,        1000,          kMicrosPerSecond,
                     86400000, kMicrosPerDay, 7 * kMicrosPerHour};
  for (int64_t micros : cases) {
    auto parsed = ParseIntervalMicros(FormatIntervalMicros(micros));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, micros);
  }
}

}  // namespace
}  // namespace streamrel
