#include "sql/parser.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace streamrel::sql {
namespace {

StatementPtr Parse(const std::string& text) {
  auto r = ParseSingleStatement(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : nullptr;
}

const SelectStmt& AsSelect(const StatementPtr& stmt) {
  return static_cast<const SelectStmt&>(*stmt);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT a, b FROM t");
  ASSERT_NE(stmt, nullptr);
  const auto& sel = AsSelect(stmt);
  ASSERT_EQ(sel.select_list.size(), 2u);
  EXPECT_EQ(sel.select_list[0].expr->ToString(), "a");
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0]->name, "t");
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse("SELECT * FROM t");
  EXPECT_EQ(AsSelect(stmt).select_list[0].expr->kind, ExprKind::kStar);
}

TEST(ParserTest, QualifiedStar) {
  auto stmt = Parse("SELECT t.* FROM t");
  const auto& e = *AsSelect(stmt).select_list[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kStar);
  EXPECT_EQ(e.qualifier, "t");
}

TEST(ParserTest, AliasWithAndWithoutAs) {
  auto stmt = Parse("SELECT a AS x, b y FROM t");
  const auto& sel = AsSelect(stmt);
  EXPECT_EQ(sel.select_list[0].alias, "x");
  EXPECT_EQ(sel.select_list[1].alias, "y");
}

TEST(ParserTest, WhereGroupHavingOrderLimit) {
  auto stmt = Parse(
      "SELECT url, count(*) c FROM t WHERE hits > 3 GROUP BY url "
      "HAVING count(*) > 1 ORDER BY c DESC LIMIT 10 OFFSET 2");
  const auto& sel = AsSelect(stmt);
  ASSERT_NE(sel.where, nullptr);
  ASSERT_EQ(sel.group_by.size(), 1u);
  ASSERT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_FALSE(sel.order_by[0].ascending);
  EXPECT_EQ(sel.limit.value(), 10);
  EXPECT_EQ(sel.offset.value(), 2);
}

TEST(ParserTest, Distinct) {
  EXPECT_TRUE(AsSelect(Parse("SELECT DISTINCT a FROM t")).distinct);
  EXPECT_FALSE(AsSelect(Parse("SELECT ALL a FROM t")).distinct);
}

TEST(ParserTest, TimeWindowClause) {
  auto stmt = Parse(
      "SELECT url FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'>");
  const auto& ref = *AsSelect(stmt).from[0];
  ASSERT_TRUE(ref.window.has_value());
  EXPECT_FALSE(ref.window->is_slices);
  EXPECT_EQ(ref.window->unit, WindowUnit::kTime);
  EXPECT_EQ(ref.window->visible, 5 * kMicrosPerMinute);
  EXPECT_EQ(ref.window->advance, kMicrosPerMinute);
}

TEST(ParserTest, TumblingWindowDefaultsAdvance) {
  auto stmt = Parse("SELECT url FROM s <VISIBLE '1 hour'>");
  const auto& w = *AsSelect(stmt).from[0]->window;
  EXPECT_EQ(w.visible, w.advance);
}

TEST(ParserTest, RowWindowClause) {
  auto stmt = Parse("SELECT a FROM s <VISIBLE 100 ROWS ADVANCE 10 ROWS>");
  const auto& w = *AsSelect(stmt).from[0]->window;
  EXPECT_EQ(w.unit, WindowUnit::kRows);
  EXPECT_EQ(w.visible, 100);
  EXPECT_EQ(w.advance, 10);
}

TEST(ParserTest, SlicesWindowClause) {
  auto stmt = Parse("SELECT a FROM s <SLICES 1 WINDOWS>");
  const auto& w = *AsSelect(stmt).from[0]->window;
  EXPECT_TRUE(w.is_slices);
  EXPECT_EQ(w.slices_count, 1);
}

TEST(ParserTest, MixedWindowUnitsRejected) {
  EXPECT_FALSE(
      ParseSingleStatement("SELECT a FROM s <VISIBLE '5 minutes' ADVANCE 10 ROWS>")
          .ok());
}

TEST(ParserTest, WindowNotConfusedWithComparison) {
  // '<' followed by a non-window keyword parses as a comparison.
  auto stmt = Parse("SELECT a FROM t WHERE a < b");
  EXPECT_NE(AsSelect(stmt).where, nullptr);
}

TEST(ParserTest, JoinOn) {
  auto stmt = Parse("SELECT * FROM a JOIN b ON a.x = b.y");
  const auto& ref = *AsSelect(stmt).from[0];
  EXPECT_EQ(ref.kind, TableRefKind::kJoin);
  EXPECT_EQ(ref.join_type, JoinType::kInner);
  ASSERT_NE(ref.join_condition, nullptr);
}

TEST(ParserTest, LeftJoin) {
  auto stmt = Parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y");
  EXPECT_EQ(AsSelect(stmt).from[0]->join_type, JoinType::kLeft);
}

TEST(ParserTest, CrossJoin) {
  auto stmt = Parse("SELECT * FROM a CROSS JOIN b");
  EXPECT_EQ(AsSelect(stmt).from[0]->join_type, JoinType::kCross);
  EXPECT_EQ(AsSelect(stmt).from[0]->join_condition, nullptr);
}

TEST(ParserTest, CommaJoin) {
  auto stmt = Parse("SELECT * FROM a, b WHERE a.x = b.y");
  EXPECT_EQ(AsSelect(stmt).from.size(), 2u);
}

TEST(ParserTest, SubqueryInFromRequiresAlias) {
  EXPECT_TRUE(ParseSingleStatement("SELECT * FROM (SELECT 1) q").ok());
  EXPECT_FALSE(ParseSingleStatement("SELECT * FROM (SELECT 1)").ok());
}

TEST(ParserTest, Example5FromPaper) {
  // The paper's historical-comparison query (with the '-' the OCR lost).
  auto stmt = Parse(
      "select c.scnt, h.scnt, c.stime from "
      "(select sum(cnt) as scnt, cq_close(*) as stime "
      " from urls_now <slices 1 windows>) c, urls_archive h "
      "where c.stime - '1 week'::interval = h.stime");
  const auto& sel = AsSelect(stmt);
  EXPECT_EQ(sel.from.size(), 2u);
  EXPECT_EQ(sel.from[0]->kind, TableRefKind::kSubquery);
  EXPECT_EQ(sel.from[0]->alias, "c");
}

TEST(ParserTest, UnionAll) {
  auto stmt = Parse("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3");
  EXPECT_EQ(AsSelect(stmt).union_all.size(), 2u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT 1 + 2 * 3");
  EXPECT_EQ(AsSelect(stmt).select_list[0].expr->ToString(),
            "(1 + (2 * 3))");
}

TEST(ParserTest, AndOrPrecedence) {
  auto stmt = Parse("SELECT a OR b AND c");
  EXPECT_EQ(AsSelect(stmt).select_list[0].expr->ToString(),
            "(a OR (b AND c))");
}

TEST(ParserTest, NotPrecedence) {
  auto stmt = Parse("SELECT NOT a = b");
  // NOT binds looser than comparison: NOT (a = b).
  EXPECT_EQ(AsSelect(stmt).select_list[0].expr->ToString(), "NOT (a = b)");
}

TEST(ParserTest, IntervalLiteral) {
  auto expr = ParseExpression("interval '5 minutes'");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->literal.type(), DataType::kInterval);
  EXPECT_EQ((*expr)->literal.AsIntervalMicros(), 5 * kMicrosPerMinute);
}

TEST(ParserTest, TimestampLiteral) {
  auto expr = ParseExpression("timestamp '2009-01-05 09:00:00'");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->literal.type(), DataType::kTimestamp);
}

TEST(ParserTest, CastSyntaxes) {
  auto expr = ParseExpression("CAST(x AS bigint)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kCast);
  EXPECT_EQ((*expr)->cast_type, DataType::kInt64);

  auto pg = ParseExpression("'1 week'::interval");
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ((*pg)->kind, ExprKind::kCast);
  EXPECT_EQ((*pg)->cast_type, DataType::kInterval);
}

TEST(ParserTest, CaseExpression) {
  auto expr = ParseExpression(
      "CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, ExprKind::kCase);
  EXPECT_TRUE((*expr)->case_has_else);
  EXPECT_EQ((*expr)->children.size(), 5u);
}

TEST(ParserTest, InBetweenLikeIsNull) {
  EXPECT_EQ((*ParseExpression("a IN (1, 2, 3)"))->kind, ExprKind::kIn);
  EXPECT_EQ((*ParseExpression("a NOT IN (1)"))->is_not, true);
  EXPECT_EQ((*ParseExpression("a BETWEEN 1 AND 2"))->kind,
            ExprKind::kBetween);
  EXPECT_EQ((*ParseExpression("a IS NULL"))->kind, ExprKind::kIsNull);
  EXPECT_EQ((*ParseExpression("a IS NOT NULL"))->is_not, true);
  auto like = ParseExpression("a LIKE '%x%'");
  ASSERT_TRUE(like.ok());
  EXPECT_EQ((*like)->binary_op, BinaryOp::kLike);
}

TEST(ParserTest, CountVariants) {
  auto star = ParseExpression("count(*)");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ((*star)->children[0]->kind, ExprKind::kStar);
  auto distinct = ParseExpression("count(DISTINCT url)");
  ASSERT_TRUE(distinct.ok());
  EXPECT_TRUE((*distinct)->distinct);
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse(
      "CREATE TABLE urls_archive (url varchar(1024), scnt integer, "
      "stime timestamp)");
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  EXPECT_EQ(ct.name, "urls_archive");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.columns[0].type, DataType::kString);
  EXPECT_EQ(ct.columns[1].type, DataType::kInt64);
  EXPECT_EQ(ct.columns[2].type, DataType::kTimestamp);
}

TEST(ParserTest, CreateStreamExample1) {
  auto stmt = Parse(
      "CREATE STREAM url_stream (url varchar(1024), "
      "atime timestamp CQTIME USER, client_ip varchar(50))");
  const auto& cs = static_cast<const CreateStreamStmt&>(*stmt);
  EXPECT_EQ(cs.name, "url_stream");
  EXPECT_TRUE(cs.columns[1].is_cqtime);
  EXPECT_FALSE(cs.columns[1].cqtime_system);
}

TEST(ParserTest, CreateStreamCqtimeSystem) {
  auto stmt = Parse("CREATE STREAM s (ts timestamp CQTIME SYSTEM, v bigint)");
  const auto& cs = static_cast<const CreateStreamStmt&>(*stmt);
  EXPECT_TRUE(cs.columns[0].cqtime_system);
}

TEST(ParserTest, CqtimeOnTableRejected) {
  EXPECT_FALSE(
      ParseSingleStatement("CREATE TABLE t (ts timestamp CQTIME USER)").ok());
}

TEST(ParserTest, CreateDerivedStreamExample3) {
  auto stmt = Parse(
      "CREATE STREAM urls_now as SELECT url, count(*) as scnt, cq_close(*) "
      "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
      "GROUP by url");
  EXPECT_EQ(stmt->kind(), StatementKind::kCreateDerivedStream);
  const auto& ds = static_cast<const CreateDerivedStreamStmt&>(*stmt);
  EXPECT_EQ(ds.name, "urls_now");
  EXPECT_EQ(ds.select->group_by.size(), 1u);
}

TEST(ParserTest, CreateChannelExample4) {
  auto stmt =
      Parse("CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive "
            "APPEND");
  const auto& ch = static_cast<const CreateChannelStmt&>(*stmt);
  EXPECT_EQ(ch.name, "urls_channel");
  EXPECT_EQ(ch.from_stream, "urls_now");
  EXPECT_EQ(ch.into_table, "urls_archive");
  EXPECT_EQ(ch.mode, ChannelMode::kAppend);
}

TEST(ParserTest, CreateChannelReplace) {
  auto stmt = Parse("CREATE CHANNEL c FROM s INTO t REPLACE");
  EXPECT_EQ(static_cast<const CreateChannelStmt&>(*stmt).mode,
            ChannelMode::kReplace);
}

TEST(ParserTest, CreateViewAndIndex) {
  EXPECT_EQ(Parse("CREATE VIEW v AS SELECT a FROM t")->kind(),
            StatementKind::kCreateView);
  auto idx = Parse("CREATE INDEX i ON t (c)");
  const auto& ci = static_cast<const CreateIndexStmt&>(*idx);
  EXPECT_EQ(ci.table, "t");
  EXPECT_EQ(ci.column, "c");
}

TEST(ParserTest, InsertValues) {
  auto stmt = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  EXPECT_EQ(ins.table, "t");
  EXPECT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.rows.size(), 2u);
}

TEST(ParserTest, DropVariants) {
  EXPECT_EQ(static_cast<const DropStmt&>(*Parse("DROP TABLE t")).object_kind,
            ObjectKind::kTable);
  EXPECT_EQ(
      static_cast<const DropStmt&>(*Parse("DROP STREAM s")).object_kind,
      ObjectKind::kStream);
  StatementPtr drop_view = Parse("DROP VIEW IF EXISTS v");
  EXPECT_TRUE(static_cast<const DropStmt&>(*drop_view).if_exists);
}

TEST(ParserTest, SetOverloadForms) {
  {
    StatementPtr stmt = Parse("SET MEMORY LIMIT 1048576");
    const auto& set = static_cast<const SetStmt&>(*stmt);
    EXPECT_EQ(set.option, "memory_limit");
    EXPECT_EQ(set.value, 1048576);
  }
  {
    StatementPtr stmt = Parse("SET OVERLOAD POLICY trades SHED_OLDEST");
    const auto& set = static_cast<const SetStmt&>(*stmt);
    EXPECT_EQ(set.option, "overload_policy");
    EXPECT_EQ(set.target, "trades");
    EXPECT_EQ(set.text_value, "SHED_OLDEST");
  }
  {
    // Policy keyword is case-insensitive; stream names may be dotted.
    StatementPtr stmt = Parse("SET OVERLOAD POLICY trades.__quarantine block");
    const auto& set = static_cast<const SetStmt&>(*stmt);
    EXPECT_EQ(set.target, "trades.__quarantine");
    EXPECT_EQ(set.text_value, "BLOCK");
  }
  {
    StatementPtr stmt = Parse("SET RETRY LIMIT 5");
    const auto& set = static_cast<const SetStmt&>(*stmt);
    EXPECT_EQ(set.option, "retry_limit");
    EXPECT_EQ(set.value, 5);
  }
  {
    StatementPtr stmt = Parse("SET RETRY BACKOFF 2000");
    const auto& set = static_cast<const SetStmt&>(*stmt);
    EXPECT_EQ(set.option, "retry_backoff");
    EXPECT_EQ(set.value, 2000);
  }
  EXPECT_FALSE(ParseSingleStatement("SET MEMORY LIMIT big").ok());
  EXPECT_FALSE(ParseSingleStatement("SET OVERLOAD POLICY s DROP_ALL").ok());
  EXPECT_FALSE(ParseSingleStatement("SET RETRY SPEED 9").ok());
}

TEST(ParserTest, DottedObjectNames) {
  {
    auto stmt = Parse("SELECT reason FROM trades.__quarantine");
    EXPECT_EQ(AsSelect(stmt).from[0]->name, "trades.__quarantine");
  }
  {
    auto stmt = Parse("CREATE CHANNEL q FROM trades.__quarantine INTO t");
    const auto& ch = static_cast<const CreateChannelStmt&>(*stmt);
    EXPECT_EQ(ch.from_stream, "trades.__quarantine");
  }
  {
    auto stmt = Parse("DROP STREAM trades.__quarantine");
    const auto& drop = static_cast<const DropStmt&>(*stmt);
    EXPECT_EQ(drop.name, "trades.__quarantine");
  }
  {
    auto stmt = Parse("SHOW STATS FOR STREAM trades.__quarantine");
    const auto& show = static_cast<const ShowStatsStmt&>(*stmt);
    EXPECT_EQ(show.name, "trades.__quarantine");
  }
}

TEST(ParserTest, ShowStatsForOverload) {
  auto stmt = Parse("SHOW STATS FOR OVERLOAD");
  const auto& show = static_cast<const ShowStatsStmt&>(*stmt);
  EXPECT_EQ(show.target, ShowStatsStmt::Target::kOverload);
  EXPECT_TRUE(show.name.empty());
}

TEST(ParserTest, MultipleStatements) {
  auto r = ParseSql("SELECT 1; SELECT 2;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParserTest, ErrorsHavePosition) {
  auto r = ParseSingleStatement("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, CloneRoundTrips) {
  auto stmt = Parse(
      "SELECT a, count(*) c FROM t <VISIBLE '1 minute'> WHERE a > 0 "
      "GROUP BY a ORDER BY c DESC LIMIT 5");
  auto clone = AsSelect(stmt).CloneSelect();
  EXPECT_EQ(clone->select_list.size(), 2u);
  EXPECT_EQ(clone->select_list[1].expr->ToString(), "count(*)");
  EXPECT_TRUE(clone->from[0]->window.has_value());
  EXPECT_EQ(clone->limit.value(), 5);
}

}  // namespace
}  // namespace streamrel::sql
