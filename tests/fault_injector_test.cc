#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace streamrel {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() { FaultInjector::Instance().Reset(); }
  ~FaultInjectorTest() override { FaultInjector::Instance().Reset(); }

  FaultInjector& injector() { return FaultInjector::Instance(); }
};

TEST_F(FaultInjectorTest, UnarmedPointsPassThrough) {
  EXPECT_TRUE(injector().Hit("wal.append").ok());
  EXPECT_TRUE(injector().Hit("no.such.point").ok());
  // Nothing armed and no counting: hits are not even recorded.
  EXPECT_EQ(injector().totals().hits, 0);
}

TEST_F(FaultInjectorTest, FailOnceFiresExactlyOnce) {
  injector().Arm("wal.sync", FaultPolicy::FailOnce());
  EXPECT_FALSE(injector().Hit("wal.sync").ok());
  EXPECT_TRUE(injector().Hit("wal.sync").ok());
  EXPECT_TRUE(injector().Hit("wal.sync").ok());
  EXPECT_EQ(injector().totals().fires, 1);
}

TEST_F(FaultInjectorTest, FailNthCountsFromArming) {
  injector().Arm("disk.write", FaultPolicy::FailNth(3));
  EXPECT_TRUE(injector().Hit("disk.write").ok());
  EXPECT_TRUE(injector().Hit("disk.write").ok());
  EXPECT_FALSE(injector().Hit("disk.write").ok());
  // Disarmed after firing.
  EXPECT_TRUE(injector().Hit("disk.write").ok());

  // Re-arming restarts the count even though the point has prior hits.
  injector().Arm("disk.write", FaultPolicy::FailNth(2));
  EXPECT_TRUE(injector().Hit("disk.write").ok());
  EXPECT_FALSE(injector().Hit("disk.write").ok());
}

TEST_F(FaultInjectorTest, PointsAreIndependent) {
  injector().Arm("wal.append", FaultPolicy::FailOnce());
  EXPECT_TRUE(injector().Hit("wal.sync").ok());
  EXPECT_FALSE(injector().Hit("wal.append").ok());
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  auto fire_pattern = [&](uint64_t seed) {
    injector().Reset();
    injector().Arm("channel.sink", FaultPolicy::Probability(0.3, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!injector().Hit("channel.sink").ok());
    }
    return fired;
  };
  std::vector<bool> a = fire_pattern(42);
  std::vector<bool> b = fire_pattern(42);
  std::vector<bool> c = fire_pattern(43);
  EXPECT_EQ(a, b);  // same seed, same pattern
  EXPECT_NE(a, c);  // different seed, different pattern
  // p=0.3 over 64 trials: some fire, some don't.
  int fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST_F(FaultInjectorTest, ProbabilityExtremes) {
  injector().Arm("p0", FaultPolicy::Probability(0.0, 7));
  injector().Arm("p1", FaultPolicy::Probability(1.0, 7));
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(injector().Hit("p0").ok());
    EXPECT_FALSE(injector().Hit("p1").ok());
  }
}

TEST_F(FaultInjectorTest, CrashLatchesEveryPoint) {
  injector().Arm("wal.sync", FaultPolicy::CrashAtHit(2));
  EXPECT_TRUE(injector().Hit("wal.sync").ok());
  Status crash = injector().Hit("wal.sync");
  EXPECT_FALSE(crash.ok());
  EXPECT_TRUE(FaultInjector::IsInjectedCrash(crash));
  EXPECT_TRUE(injector().crashed());
  // The process is "dead": every later hit at ANY point fails too.
  EXPECT_TRUE(FaultInjector::IsInjectedCrash(injector().Hit("wal.append")));
  EXPECT_TRUE(FaultInjector::IsInjectedCrash(injector().Hit("disk.write")));
  injector().Reset();
  EXPECT_FALSE(injector().crashed());
  EXPECT_TRUE(injector().Hit("wal.sync").ok());
}

TEST_F(FaultInjectorTest, NonCrashFaultIsNotInjectedCrash) {
  injector().Arm("wal.sync", FaultPolicy::FailOnce());
  Status fault = injector().Hit("wal.sync");
  EXPECT_FALSE(fault.ok());
  EXPECT_FALSE(FaultInjector::IsInjectedCrash(fault));
}

TEST_F(FaultInjectorTest, GlobalCrashCounterSpansPoints) {
  injector().ArmCrashAtGlobalHit(3);
  EXPECT_TRUE(injector().Hit("wal.append").ok());
  EXPECT_TRUE(injector().Hit("disk.write").ok());
  Status crash = injector().Hit("channel.sink");
  EXPECT_TRUE(FaultInjector::IsInjectedCrash(crash));
  EXPECT_EQ(injector().totals().crashes, 1);
}

TEST_F(FaultInjectorTest, CountingModeRecordsHitsWithoutFiring) {
  injector().EnableCounting(true);
  EXPECT_TRUE(injector().Hit("wal.append").ok());
  EXPECT_TRUE(injector().Hit("wal.append").ok());
  EXPECT_TRUE(injector().Hit("wal.sync").ok());
  FaultInjector::Totals totals = injector().totals();
  EXPECT_EQ(totals.hits, 3);
  EXPECT_EQ(totals.fires, 0);

  bool saw_append = false;
  for (const auto& info : injector().Snapshot()) {
    if (info.point == "wal.append") {
      saw_append = true;
      EXPECT_EQ(info.hits, 2);
      EXPECT_EQ(info.fires, 0);
    }
  }
  EXPECT_TRUE(saw_append);
}

TEST_F(FaultInjectorTest, IdenticalHitSequencesAreDeterministic) {
  // The torture harness depends on this: a counting run and a crash run
  // over the same workload must agree on hit numbering.
  auto run = [&](int64_t crash_at) {
    injector().Reset();
    injector().ArmCrashAtGlobalHit(crash_at);
    int failed_at = -1;
    const char* points[] = {"wal.append", "wal.append", "wal.sync",
                            "channel.sink", "wal.append", "wal.sync"};
    for (int i = 0; i < 6; ++i) {
      if (!injector().Hit(points[i]).ok()) {
        failed_at = i;
        break;
      }
    }
    return failed_at;
  };
  for (int64_t k = 1; k <= 6; ++k) {
    EXPECT_EQ(run(k), static_cast<int>(k - 1)) << "k=" << k;
    EXPECT_EQ(run(k), static_cast<int>(k - 1)) << "k=" << k << " rerun";
  }
}

}  // namespace
}  // namespace streamrel
