#include "common/status.h"

#include <gtest/gtest.h>

namespace streamrel {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table t");
  EXPECT_EQ(s.ToString(), "Not found: table t");
}

TEST(StatusTest, AllFactoriesSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::ExecutionError("").code(), StatusCode::kExecutionError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r(std::string("abc"));
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "abc");
}

namespace helpers {
Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
Status UseMacros(int x, int* out) {
  ASSIGN_OR_RETURN(int half, HalveEven(x));
  RETURN_IF_ERROR(Status::OK());
  *out = half;
  return Status::OK();
}
}  // namespace helpers

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(helpers::UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = helpers::UseMacros(3, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace streamrel
