#include "stream/metrics.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

// --- metric primitives -------------------------------------------------------

TEST(HistogramTest, BucketsMinMaxAndPercentiles) {
  Histogram h({10, 100});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  h.Record(5);
  h.Record(50);
  h.Record(500);  // overflow bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 555);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 500);
  // Nearest-rank (rank = ceil(q * n)) over the bucket upper bounds;
  // the overflow bucket reports the observed max.
  EXPECT_EQ(h.Percentile(0.33), 10);   // rank 1 of 3
  EXPECT_EQ(h.Percentile(0.66), 100);  // rank 2 of 3
  EXPECT_EQ(h.Percentile(0.99), 500);  // rank 3 of 3 (overflow)
}

TEST(MetricsRegistryTest, SnapshotAndRemoveObject) {
  MetricsRegistry registry;
  registry.GetCounter("cq", "a", "rows")->Add(7);
  registry.GetGauge("cq", "a", "level")->Set(3);
  registry.GetCounter("cq", "b", "rows")->Add(1);
  registry.GetWatermarkGauge("stream", "s", "watermark");

  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // Deterministic (scope, name, metric) order.
  EXPECT_EQ(samples[0].name, "a");
  EXPECT_EQ(samples[0].metric, "level");
  EXPECT_EQ(samples[1].metric, "rows");
  EXPECT_EQ(samples[1].value, 7);
  // Unset watermark gauges flag themselves for NULL rendering.
  EXPECT_TRUE(samples[3].is_timestamp);
  EXPECT_EQ(samples[3].value, INT64_MIN);

  registry.RemoveObject("cq", "a");
  EXPECT_EQ(registry.Snapshot().size(), 2u);
  // Cells for other objects are untouched.
  EXPECT_EQ(registry.GetCounter("cq", "b", "rows")->value(), 1);
}

TEST(MetricsRegistryTest, HistogramExpandsIntoSamples) {
  MetricsRegistry registry;
  registry.GetHistogram("cq", "q", "eval_micros")->Record(40);
  auto samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 7u);
  EXPECT_EQ(samples[0].metric, "eval_micros_count");
  EXPECT_EQ(samples[0].value, 1);
  EXPECT_EQ(samples[1].metric, "eval_micros_total");
  EXPECT_EQ(samples[1].value, 40);
}

// --- SHOW STATS end to end ---------------------------------------------------

/// Finds one metric value in a SHOW STATS result; nullopt when absent,
/// INT64_MIN stands in for NULL.
std::optional<int64_t> Metric(const engine::QueryResult& result,
                              const std::string& scope,
                              const std::string& name,
                              const std::string& metric) {
  for (const Row& row : result.rows) {
    if (row[0].AsString() == scope && row[1].AsString() == name &&
        row[2].AsString() == metric) {
      return row[3].is_null() ? INT64_MIN : row[3].AsInt64();
    }
  }
  return std::nullopt;
}

class MetricsTest : public ::testing::Test {
 protected:
  MetricsTest() {
    MustExecute(&db_,
                "CREATE STREAM s (url varchar, ts timestamp CQTIME USER)");
    MustExecute(&db_,
                "CREATE TABLE raw_archive (url varchar, ts timestamp)");
  }

  void IngestSeconds(const std::vector<int64_t>& secs) {
    std::vector<Row> rows;
    for (int64_t t : secs) {
      rows.push_back(
          Row{Value::String("/p" + std::to_string(t % 3)),
              Value::Timestamp(t * kSec)});
    }
    ASSERT_TRUE(db_.Ingest("s", rows).ok());
  }

  engine::Database db_;
};

TEST_F(MetricsTest, ShowStatsMatchesGroundTruth) {
  // Two CQs with the same (stream, slice, filter, group) signature share
  // one slice aggregator; a raw channel archives every ingested row.
  auto cq1 = db_.CreateContinuousQuery(
      "cq1", "SELECT url, count(*) FROM s <VISIBLE '1 minute'> GROUP BY url");
  ASSERT_TRUE(cq1.ok());
  auto cq2 = db_.CreateContinuousQuery(
      "cq2",
      "SELECT url, count(*) AS c FROM s "
      "<VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url");
  ASSERT_TRUE(cq2.ok());
  ASSERT_TRUE((*cq1)->is_shared());
  ASSERT_TRUE((*cq2)->is_shared());
  MustExecute(&db_, "CREATE CHANNEL raw_ch FROM s INTO raw_archive APPEND");

  IngestSeconds({10, 20, 30, 70, 80});
  ASSERT_TRUE(db_.AdvanceTime("s", 2 * kMin).ok());

  auto stats = MustExecute(&db_, "SHOW STATS");
  ASSERT_EQ(stats.schema.num_columns(), 4u);

  // Stream-level ingest accounting.
  EXPECT_EQ(Metric(stats, "stream", "s", "rows_ingested"), 5);
  EXPECT_EQ(Metric(stats, "stream", "s", "watermark"), 2 * kMin);
  EXPECT_EQ(Metric(stats, "stream", "s", "cq_subscriptions"), 2);
  EXPECT_EQ(Metric(stats, "stream", "s", "channels"), 1);
  EXPECT_EQ(Metric(stats, "engine", "runtime", "rows_ingested"), 5);
  EXPECT_EQ(Metric(stats, "engine", "runtime", "cqs_shared"), 2);
  EXPECT_EQ(Metric(stats, "engine", "runtime", "shared_pipelines"), 1);

  // The one shared aggregator absorbed each row once for both CQs.
  std::string agg_name;
  for (const Row& row : stats.rows) {
    if (row[0].AsString() == "aggregator" &&
        row[2].AsString() == "member_cqs") {
      agg_name = row[1].AsString();
      EXPECT_EQ(row[3].AsInt64(), 2);
    }
  }
  ASSERT_FALSE(agg_name.empty());
  EXPECT_EQ(Metric(stats, "aggregator", agg_name, "rows_absorbed"), 5);

  // Per-CQ counters agree with the CQ objects themselves.
  EXPECT_EQ(Metric(stats, "cq", "cq1", "windows_closed"),
            (*cq1)->windows_evaluated());
  EXPECT_EQ(Metric(stats, "cq", "cq1", "rows_emitted"),
            (*cq1)->rows_emitted());
  EXPECT_EQ(Metric(stats, "cq", "cq2", "windows_closed"),
            (*cq2)->windows_evaluated());
  EXPECT_GT(*Metric(stats, "cq", "cq1", "windows_closed"), 0);
  EXPECT_EQ(Metric(stats, "cq", "cq1", "eval_micros_count"),
            (*cq1)->windows_evaluated());

  // Channel persistence counters agree with the channel and the table.
  Channel* ch = db_.runtime()->GetChannel("raw_ch");
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(Metric(stats, "channel", "raw_ch", "rows_persisted"),
            ch->rows_persisted());
  EXPECT_EQ(Metric(stats, "channel", "raw_ch", "batches_persisted"),
            ch->batches_persisted());
  EXPECT_EQ(Metric(stats, "channel", "raw_ch", "commit_watermark"),
            ch->watermark());
  auto archived = MustExecute(&db_, "SELECT count(*) FROM raw_archive");
  EXPECT_EQ(archived.rows[0][0].AsInt64(),
            *Metric(stats, "channel", "raw_ch", "rows_persisted"));

  // WAL totals ride along in the engine scope.
  EXPECT_EQ(Metric(stats, "engine", "wal", "records"),
            db_.wal()->record_count());
}

TEST_F(MetricsTest, ShowStatsForFiltersToOneObject) {
  auto cq = db_.CreateContinuousQuery(
      "cq1", "SELECT url, count(*) FROM s <VISIBLE '1 minute'> GROUP BY url");
  ASSERT_TRUE(cq.ok());
  MustExecute(&db_, "CREATE CHANNEL raw_ch FROM s INTO raw_archive APPEND");
  IngestSeconds({10, 20});

  auto for_cq = MustExecute(&db_, "SHOW STATS FOR CQ cq1");
  ASSERT_FALSE(for_cq.rows.empty());
  for (const Row& row : for_cq.rows) {
    EXPECT_EQ(row[0].AsString(), "cq");
    EXPECT_EQ(row[1].AsString(), "cq1");
  }

  auto for_stream = MustExecute(&db_, "SHOW STATS FOR STREAM s");
  ASSERT_FALSE(for_stream.rows.empty());
  for (const Row& row : for_stream.rows) EXPECT_EQ(row[0].AsString(), "stream");
  EXPECT_EQ(Metric(for_stream, "stream", "s", "rows_ingested"), 2);

  auto for_channel = MustExecute(&db_, "SHOW STATS FOR CHANNEL raw_ch");
  ASSERT_FALSE(for_channel.rows.empty());
  for (const Row& row : for_channel.rows) {
    EXPECT_EQ(row[0].AsString(), "channel");
  }

  auto missing = db_.Execute("SHOW STATS FOR CQ ghost");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(db_.Execute("SHOW STATS FOR STREAM ghost").ok());
  EXPECT_FALSE(db_.Execute("SHOW STATS FOR CHANNEL ghost").ok());
  EXPECT_FALSE(db_.Execute("SHOW STATS FOR TABLE t").ok());  // parse error
}

TEST_F(MetricsTest, UnsetWatermarksRenderAsNull) {
  auto stats = MustExecute(&db_, "SHOW STATS FOR STREAM s");
  // No rows ingested: the watermark gauge is unset and must be NULL, not
  // INT64_MIN.
  bool found = false;
  for (const Row& row : stats.rows) {
    if (row[2].AsString() == "watermark") {
      EXPECT_TRUE(row[3].is_null());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, DropCqRemovesItsMetrics) {
  auto cq = db_.CreateContinuousQuery(
      "cq1", "SELECT url, count(*) FROM s <VISIBLE '1 minute'> GROUP BY url");
  ASSERT_TRUE(cq.ok());
  IngestSeconds({10});
  ASSERT_TRUE(db_.DropContinuousQuery("cq1").ok());
  auto stats = MustExecute(&db_, "SHOW STATS");
  for (const Row& row : stats.rows) {
    EXPECT_FALSE(row[0].AsString() == "cq" && row[1].AsString() == "cq1");
  }
}

TEST_F(MetricsTest, DisabledMetricsSkipIngestAccounting) {
  db_.runtime()->metrics()->set_enabled(false);
  IngestSeconds({10, 20});
  auto stats = MustExecute(&db_, "SHOW STATS FOR STREAM s");
  EXPECT_EQ(Metric(stats, "stream", "s", "rows_ingested"), 0);
  // The runtime's own accounting is unaffected.
  EXPECT_EQ(db_.runtime()->rows_ingested(), 2);
}

TEST_F(MetricsTest, StatsSnapshotStructApi) {
  IngestSeconds({10});
  engine::EngineStats stats = db_.StatsSnapshot();
  EXPECT_FALSE(stats.metrics.empty());
  EXPECT_EQ(stats.wal_records, db_.wal()->record_count());
  EXPECT_GE(stats.wal_bytes, 0);
  bool saw_stream_rows = false;
  for (const auto& sample : stats.metrics) {
    if (sample.scope == "stream" && sample.name == "s" &&
        sample.metric == "rows_ingested") {
      EXPECT_EQ(sample.value, 1);
      saw_stream_rows = true;
    }
  }
  EXPECT_TRUE(saw_stream_rows);
}

}  // namespace
}  // namespace streamrel::stream
