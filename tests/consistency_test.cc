// Window consistency (paper Section 4): a continuous query that joins a
// stream with tables sees table updates only on window boundaries, via
// commit-time MVCC snapshots taken as of each window close.

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

class WindowConsistencyTest : public ::testing::Test {
 protected:
  WindowConsistencyTest() {
    MustExecute(&db_,
                "CREATE STREAM clicks (page varchar, ts timestamp CQTIME "
                "USER)");
    MustExecute(&db_, "CREATE TABLE labels (page varchar, label varchar)");
  }

  void Click(const std::string& page, int64_t ts) {
    ASSERT_TRUE(
        db_.Ingest("clicks", {Row{Value::String(page), Value::Timestamp(ts)}})
            .ok());
  }

  engine::Database db_;
  CqCapture capture_;
};

TEST_F(WindowConsistencyTest, StreamTableJoinSeesCommittedDimension) {
  MustExecute(&db_, "INSERT INTO labels VALUES ('/a', 'home')");
  auto cq = db_.CreateContinuousQuery(
      "enrich",
      "SELECT c.page, l.label FROM clicks <VISIBLE '1 minute'> c, labels l "
      "WHERE c.page = l.page");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  (*cq)->AddCallback(capture_.Callback());
  Click("/a", 10 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("clicks", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  ASSERT_EQ(capture_.batches[0].rows.size(), 1u);
  EXPECT_EQ(capture_.batches[0].rows[0][1].AsString(), "home");
}

TEST_F(WindowConsistencyTest, TableUpdateVisibleOnlyAtNextBoundary) {
  auto cq = db_.CreateContinuousQuery(
      "enrich",
      "SELECT c.page, l.label FROM clicks <VISIBLE '1 minute'> c, labels l "
      "WHERE c.page = l.page");
  ASSERT_TRUE(cq.ok());
  (*cq)->AddCallback(capture_.Callback());

  // Window 1 contains a click, but the label row commits at logical time
  // 90s — after the window-1 boundary (60s). The logical clock is driven by
  // the stream watermark, so advance it first.
  Click("/a", 10 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("clicks", 90 * kSec).ok());
  MustExecute(&db_, "INSERT INTO labels VALUES ('/a', 'late')");

  Click("/a", 100 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("clicks", 2 * kMin).ok());

  ASSERT_EQ(capture_.batches.size(), 2u);
  // Window closing at 60s: snapshot as of 60s — the label (commit time 90s)
  // is NOT visible, so the join produced nothing.
  EXPECT_TRUE(capture_.batches[0].rows.empty());
  // Window closing at 120s: snapshot as of 120s — the label is visible.
  ASSERT_EQ(capture_.batches[1].rows.size(), 1u);
  EXPECT_EQ(capture_.batches[1].rows[0][1].AsString(), "late");
}

TEST_F(WindowConsistencyTest, ActiveTableJoinSeesOnlyClosedWindows) {
  // Example 5's structure: compare the current window against the archive;
  // the archive must contain exactly the windows that closed strictly
  // before this one.
  MustExecute(&db_,
              "CREATE STREAM per_min AS SELECT count(*) AS c, cq_close(*) "
              "AS w FROM clicks <VISIBLE '1 minute'>");
  MustExecute(&db_, "CREATE TABLE hist (c bigint, w timestamp)");
  MustExecute(&db_, "CREATE CHANNEL ch FROM per_min INTO hist APPEND");

  auto cq = db_.CreateContinuousQuery(
      "compare",
      "SELECT n.c, h.c FROM "
      "(SELECT c, w FROM per_min <SLICES 1 WINDOWS>) n, hist h "
      "WHERE n.w - interval '1 minute' = h.w");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  (*cq)->AddCallback(capture_.Callback());

  // Three minutes with 1, 2, 3 clicks.
  Click("/a", 10 * kSec);
  Click("/a", 70 * kSec);
  Click("/a", 80 * kSec);
  Click("/a", 130 * kSec);
  Click("/a", 140 * kSec);
  Click("/a", 150 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("clicks", 3 * kMin).ok());

  // Minute 1 has no predecessor; minutes 2 and 3 compare against history.
  ASSERT_EQ(capture_.batches.size(), 3u);
  EXPECT_TRUE(capture_.batches[0].rows.empty());
  ASSERT_EQ(capture_.batches[1].rows.size(), 1u);
  EXPECT_EQ(capture_.batches[1].rows[0][0].AsInt64(), 2);  // current
  EXPECT_EQ(capture_.batches[1].rows[0][1].AsInt64(), 1);  // previous
  ASSERT_EQ(capture_.batches[2].rows.size(), 1u);
  EXPECT_EQ(capture_.batches[2].rows[0][0].AsInt64(), 3);
  EXPECT_EQ(capture_.batches[2].rows[0][1].AsInt64(), 2);
}

TEST_F(WindowConsistencyTest, ChannelCommitTimeIsWindowClose) {
  MustExecute(&db_,
              "CREATE STREAM per_min AS SELECT count(*) AS c, cq_close(*) "
              "AS w FROM clicks <VISIBLE '1 minute'>");
  MustExecute(&db_, "CREATE TABLE hist (c bigint, w timestamp)");
  MustExecute(&db_, "CREATE CHANNEL ch FROM per_min INTO hist APPEND");
  Click("/a", 10 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("clicks", kMin).ok());

  // An as-of snapshot one microsecond before the close must not see the
  // row; at the close it must.
  auto* table = db_.catalog()->GetTable("hist");
  auto count_asof = [&](int64_t t) {
    int n = 0;
    EXPECT_TRUE(table->heap
                    ->Scan(*db_.txns(), db_.txns()->SnapshotAsOf(t),
                           storage::kInvalidTxn,
                           [&](storage::RowId, const Row&) {
                             ++n;
                             return true;
                           })
                    .ok());
    return n;
  };
  EXPECT_EQ(count_asof(kMin - 1), 0);
  EXPECT_EQ(count_asof(kMin), 1);
}

TEST_F(WindowConsistencyTest, SnapshotQueriesUseCurrentSnapshot) {
  MustExecute(&db_, "INSERT INTO labels VALUES ('/a', 'v1')");
  auto r1 = MustExecute(&db_, "SELECT count(*) FROM labels");
  EXPECT_EQ(r1.rows[0][0].AsInt64(), 1);
  MustExecute(&db_, "INSERT INTO labels VALUES ('/b', 'v2')");
  auto r2 = MustExecute(&db_, "SELECT count(*) FROM labels");
  EXPECT_EQ(r2.rows[0][0].AsInt64(), 2);
}

}  // namespace
}  // namespace streamrel
