#include "storage/heap_table.h"

#include <gtest/gtest.h>

#include <memory>

namespace streamrel::storage {
namespace {

Schema TwoCol() {
  return Schema({Column("id", DataType::kInt64),
                 Column("name", DataType::kString)});
}

class HeapTableTest : public ::testing::Test {
 protected:
  HeapTableTest()
      : disk_(std::make_shared<SimulatedDisk>()),
        table_(TwoCol(), disk_, /*page_size=*/256) {}

  TxnId CommittedInsert(int64_t id, const std::string& name) {
    TxnId txn = txns_.Begin();
    auto r = table_.Insert({Value::Int64(id), Value::String(name)}, txn);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(txns_.Commit(txn, id).ok());
    return txn;
  }

  std::vector<Row> ScanAll(const Snapshot& snap, TxnId reader = kInvalidTxn) {
    std::vector<Row> rows;
    EXPECT_TRUE(table_
                    .Scan(txns_, snap, reader,
                          [&](RowId, const Row& row) {
                            rows.push_back(row);
                            return true;
                          })
                    .ok());
    return rows;
  }

  std::shared_ptr<SimulatedDisk> disk_;
  TransactionManager txns_;
  HeapTable table_;
};

TEST_F(HeapTableTest, InsertAndScan) {
  CommittedInsert(1, "a");
  CommittedInsert(2, "b");
  auto rows = ScanAll(txns_.CurrentSnapshot());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsString(), "a");
  EXPECT_EQ(rows[1][1].AsString(), "b");
}

TEST_F(HeapTableTest, ArityMismatchRejected) {
  TxnId txn = txns_.Begin();
  EXPECT_FALSE(table_.Insert({Value::Int64(1)}, txn).ok());
}

TEST_F(HeapTableTest, UncommittedInvisible) {
  TxnId txn = txns_.Begin();
  ASSERT_TRUE(table_.Insert({Value::Int64(1), Value::String("x")}, txn).ok());
  EXPECT_TRUE(ScanAll(txns_.CurrentSnapshot()).empty());
  // ... but visible to itself.
  EXPECT_EQ(ScanAll(txns_.CurrentSnapshot(), txn).size(), 1u);
}

TEST_F(HeapTableTest, AbortedStaysInvisible) {
  TxnId txn = txns_.Begin();
  ASSERT_TRUE(table_.Insert({Value::Int64(1), Value::String("x")}, txn).ok());
  ASSERT_TRUE(txns_.Abort(txn).ok());
  EXPECT_TRUE(ScanAll(txns_.CurrentSnapshot()).empty());
}

TEST_F(HeapTableTest, SnapshotIsolation) {
  CommittedInsert(1, "old");
  Snapshot before = txns_.CurrentSnapshot();
  CommittedInsert(2, "new");
  EXPECT_EQ(ScanAll(before).size(), 1u);
  EXPECT_EQ(ScanAll(txns_.CurrentSnapshot()).size(), 2u);
}

TEST_F(HeapTableTest, DeleteHidesRow) {
  CommittedInsert(1, "victim");
  Snapshot before_delete = txns_.CurrentSnapshot();
  TxnId deleter = txns_.Begin();
  ASSERT_TRUE(table_.Delete(0, deleter).ok());
  ASSERT_TRUE(txns_.Commit(deleter, 100).ok());
  EXPECT_TRUE(ScanAll(txns_.CurrentSnapshot()).empty());
  // Old snapshot still sees it (MVCC).
  EXPECT_EQ(ScanAll(before_delete).size(), 1u);
}

TEST_F(HeapTableTest, DoubleDeleteRejected) {
  CommittedInsert(1, "x");
  TxnId d1 = txns_.Begin();
  ASSERT_TRUE(table_.Delete(0, d1).ok());
  TxnId d2 = txns_.Begin();
  EXPECT_FALSE(table_.Delete(0, d2).ok());
}

TEST_F(HeapTableTest, GetRowByRowId) {
  CommittedInsert(5, "five");
  CommittedInsert(6, "six");
  auto row = table_.GetRow(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt64(), 6);
  EXPECT_FALSE(table_.GetRow(99).ok());
}

TEST_F(HeapTableTest, SpillsAcrossPages) {
  // Page size is 256 bytes; these rows force several page flushes.
  for (int i = 0; i < 100; ++i) {
    CommittedInsert(i, "name-" + std::to_string(i) + std::string(20, 'x'));
  }
  EXPECT_GT(disk_->stats().page_writes, 3);
  auto rows = ScanAll(txns_.CurrentSnapshot());
  ASSERT_EQ(rows.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rows[i][0].AsInt64(), i);
  }
}

TEST_F(HeapTableTest, ColdScanPaysIo) {
  for (int i = 0; i < 200; ++i) CommittedInsert(i, std::string(32, 'p'));
  disk_->DropCache();
  disk_->ResetStats();
  ScanAll(txns_.CurrentSnapshot());
  EXPECT_GT(disk_->stats().page_reads, 0);
  EXPECT_GT(disk_->stats().simulated_io_micros, 0);
}

TEST_F(HeapTableTest, EarlyTerminationStopsScan) {
  for (int i = 0; i < 10; ++i) CommittedInsert(i, "r");
  int seen = 0;
  ASSERT_TRUE(table_
                  .Scan(txns_, txns_.CurrentSnapshot(), kInvalidTxn,
                        [&](RowId, const Row&) { return ++seen < 3; })
                  .ok());
  EXPECT_EQ(seen, 3);
}

TEST_F(HeapTableTest, RowCountCountsAllVersions) {
  CommittedInsert(1, "a");
  TxnId d = txns_.Begin();
  ASSERT_TRUE(table_.Delete(0, d).ok());
  ASSERT_TRUE(txns_.Commit(d, 10).ok());
  EXPECT_EQ(table_.row_count(), 1u);  // version still exists
}

TEST_F(HeapTableTest, TruncateResets) {
  for (int i = 0; i < 50; ++i) CommittedInsert(i, std::string(32, 't'));
  ASSERT_TRUE(table_.Truncate().ok());
  EXPECT_EQ(table_.row_count(), 0u);
  EXPECT_EQ(table_.byte_size(), 0);
  EXPECT_TRUE(ScanAll(txns_.CurrentSnapshot()).empty());
  // Table is usable after truncate.
  CommittedInsert(1, "again");
  EXPECT_EQ(ScanAll(txns_.CurrentSnapshot()).size(), 1u);
}

TEST_F(HeapTableTest, ByteSizeGrows) {
  EXPECT_EQ(table_.byte_size(), 0);
  CommittedInsert(1, "abc");
  EXPECT_GT(table_.byte_size(), 0);
}

}  // namespace
}  // namespace streamrel::storage
