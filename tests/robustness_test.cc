// Robustness: malformed, truncated, and randomly mutated inputs must come
// back as clean Status errors (never crashes, never silent corruption).

#include <gtest/gtest.h>

#include <random>

#include "sql/parser.h"
#include "test_util.h"

namespace streamrel {
namespace {

TEST(ParserRobustnessTest, MalformedStatements) {
  const char* cases[] = {
      "",
      ";",
      "SELECT",
      "SELECT FROM",
      "SELECT * FROM",
      "SELECT * FROM t WHERE",
      "SELECT * FROM t GROUP",
      "SELECT * FROM t ORDER LIMIT",
      "CREATE",
      "CREATE TABLE",
      "CREATE TABLE t",
      "CREATE TABLE t (",
      "CREATE TABLE t (a)",
      "CREATE TABLE t (a unknown_type)",
      "CREATE STREAM s (ts timestamp CQTIME)",
      "CREATE CHANNEL c FROM",
      "INSERT t VALUES (1)",
      "INSERT INTO t",
      "INSERT INTO t VALUES",
      "INSERT INTO t VALUES (1",
      "UPDATE SET a = 1",
      "UPDATE t SET",
      "DELETE t",
      "DROP",
      "DROP SOMETHING x",
      "SELECT a FROM s <VISIBLE>",
      "SELECT a FROM s <VISIBLE '1 minute' ADVANCE>",
      "SELECT a FROM s <SLICES WINDOWS>",
      "SELECT 1 +",
      "SELECT (1",
      "SELECT CASE END",
      "SELECT CAST(1 AS)",
      "SELECT a BETWEEN 1",
      "SELECT a IN",
      "SELECT 'unterminated",
      "SELECT \"unterminated",
      "SELECT /* unterminated",
      "EXPLAIN",
      "VACUUM",
      "SET",
      "SET MEMORY",
      "SET MEMORY LIMIT",
      "SET MEMORY LIMIT lots",
      "SET OVERLOAD",
      "SET OVERLOAD POLICY",
      "SET OVERLOAD POLICY s",
      "SET OVERLOAD POLICY s SOMETIMES",
      "SET RETRY",
      "SET RETRY LIMIT",
      "SET RETRY BACKOFF fast",
      "SHOW STATS FOR",
      "SHOW STATS FOR QUASAR x",
      "SELECT * FROM t.",
      "DROP STREAM s.",
  };
  for (const char* text : cases) {
    auto r = sql::ParseSql(text);
    if (r.ok()) {
      // An empty statement list is acceptable for "" and ";".
      EXPECT_TRUE(r->empty()) << "unexpectedly parsed: " << text;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(ParserRobustnessTest, RandomMutationsNeverCrash) {
  const std::string seed_sql =
      "SELECT url, count(*) AS c FROM url_stream "
      "<VISIBLE '5 minutes' ADVANCE '1 minute'> WHERE bytes > 10 "
      "GROUP BY url HAVING count(*) > 1 ORDER BY c DESC LIMIT 10";
  std::mt19937 rng(20090107);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = seed_sql;
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:  // delete a span
          mutated.erase(pos, 1 + rng() % 5);
          break;
        case 1:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng() % 5));
          break;
        case 2:  // random printable character
          mutated.insert(pos, 1, static_cast<char>(32 + rng() % 95));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    // Must terminate and return either a parse tree or a ParseError.
    auto r = sql::ParseSql(mutated);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError)
          << "input: " << mutated;
    }
  }
}

TEST(EngineRobustnessTest, MutatedStatementsAgainstLiveEngine) {
  engine::Database db;
  MustExecute(&db,
              "CREATE TABLE t (a bigint, b varchar);"
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "INSERT INTO t VALUES (1, 'x')");
  const std::string seeds[] = {
      "SELECT a, b FROM t WHERE a > 0 ORDER BY a",
      "INSERT INTO t VALUES (2, 'y')",
      "UPDATE t SET b = 'z' WHERE a = 1",
      "SELECT count(*) FROM t GROUP BY b",
  };
  std::mt19937 rng(42);
  int executed = 0;
  for (int trial = 0; trial < 800; ++trial) {
    std::string text = seeds[trial % 4];
    size_t pos = rng() % text.size();
    text[pos] = static_cast<char>(32 + rng() % 95);
    // Whatever happens must be a Status, not a crash; successful
    // statements must leave the engine usable.
    auto r = db.Execute(text);
    if (r.ok()) ++executed;
  }
  // The engine still works after the bombardment.
  auto check = MustExecute(&db, "SELECT count(*) FROM t");
  EXPECT_GE(check.rows[0][0].AsInt64(), 1);
  EXPECT_GT(executed, 0);  // some mutations stay valid (e.g. 'a' -> 'b')
}

TEST(EngineRobustnessTest, DeepExpressionNesting) {
  engine::Database db;
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto r = db.Execute("SELECT " + expr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt64(), 201);
}

TEST(ParserRobustnessTest, PathologicalNestingReturnsParseError) {
  // Nesting far beyond the recursion limit must come back as a ParseError,
  // not blow the stack. Exercise every self-recursive production.
  {
    std::string expr = "1";
    std::string open(10000, '(');
    std::string close(10000, ')');
    auto r = sql::ParseSql("SELECT " + open + expr + close);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {
    std::string nots;
    for (int i = 0; i < 10000; ++i) nots += "NOT ";
    auto r = sql::ParseSql("SELECT " + nots + "true");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {
    std::string minuses(10000, '-');
    auto r = sql::ParseSql("SELECT " + minuses + "1");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
  {
    std::string sql = "t";
    for (int i = 0; i < 2000; ++i) {
      sql = "(SELECT * FROM " + sql + ") q";
    }
    auto r = sql::ParseSql("SELECT * FROM " + sql);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

TEST(EngineRobustnessTest, ViewCycleDetected) {
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint)");
  MustExecute(&db, "CREATE VIEW v1 AS SELECT a FROM t");
  // Cycles can't be created through SQL (a view can only reference
  // existing objects), but self-reference via later re-creation must not
  // loop: drop t, recreate v2 referencing v1, drop v1... the depth guard
  // protects planning regardless.
  MustExecute(&db, "CREATE VIEW v2 AS SELECT a FROM v1");
  auto r = db.Execute("SELECT a FROM v2");
  EXPECT_TRUE(r.ok());
}

TEST(EngineRobustnessTest, HugeValuesRoundTrip) {
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint, s varchar)");
  std::string big(100000, 'x');
  big[50000] = '\'';  // will be escaped as ''
  std::string escaped;
  for (char c : big) {
    escaped += c;
    if (c == '\'') escaped += '\'';
  }
  MustExecute(&db, "INSERT INTO t VALUES (9223372036854775807, '" +
                       escaped + "')");
  auto r = MustExecute(&db, "SELECT a, length(s) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt64(), INT64_MAX);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 100000);
}

TEST(EngineRobustnessTest, ManySmallIngestBatches) {
  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db.CreateContinuousQuery(
      "c", "SELECT count(*) FROM s <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(i),
                                    Value::Timestamp(i * 100000)}})
                    .ok());
  }
  EXPECT_EQ(db.runtime()->rows_ingested(), 5000);
}

}  // namespace
}  // namespace streamrel
