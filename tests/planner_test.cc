#include "exec/planner.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "test_util.h"

namespace streamrel::exec {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    MustExecute(&db_, "CREATE TABLE users (id bigint, name varchar, age bigint)");
    MustExecute(&db_, "CREATE TABLE orders (uid bigint, amount double)");
    MustExecute(&db_,
                "INSERT INTO users VALUES (1, 'ann', 30), (2, 'bob', 25), "
                "(3, 'cat', 35)");
    MustExecute(&db_,
                "INSERT INTO orders VALUES (1, 10.0), (1, 20.0), (2, 5.0)");
    MustExecute(&db_, "CREATE STREAM events (v bigint, ts timestamp CQTIME "
                      "USER)");
  }

  PlannedQuery Plan(const std::string& sql) {
    auto stmt = sql::ParseSingleStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Planner planner(db_.catalog());
    auto plan =
        planner.PlanSelect(static_cast<const sql::SelectStmt&>(**stmt));
    EXPECT_TRUE(plan.ok()) << sql << "\n -> " << plan.status().ToString();
    return plan.ok() ? plan.TakeValue() : PlannedQuery{};
  }

  Status PlanError(const std::string& sql) {
    auto stmt = sql::ParseSingleStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Planner planner(db_.catalog());
    auto plan =
        planner.PlanSelect(static_cast<const sql::SelectStmt&>(**stmt));
    EXPECT_FALSE(plan.ok()) << sql;
    return plan.ok() ? Status::OK() : plan.status();
  }

  std::string Explain(const std::string& sql) {
    PlannedQuery plan = Plan(sql);
    return plan.root ? ExplainPlan(*plan.root) : "";
  }

  engine::Database db_;
};

TEST_F(PlannerTest, OutputSchemaNames) {
  PlannedQuery plan = Plan("SELECT id, name AS who, age + 1 FROM users");
  ASSERT_EQ(plan.output_schema.num_columns(), 3u);
  EXPECT_EQ(plan.output_schema.column(0).name, "id");
  EXPECT_EQ(plan.output_schema.column(1).name, "who");
  EXPECT_EQ(plan.output_schema.column(2).name, "(age + 1)");
  EXPECT_EQ(plan.output_schema.column(2).type, DataType::kInt64);
}

TEST_F(PlannerTest, StarExpansion) {
  PlannedQuery plan = Plan("SELECT * FROM users");
  EXPECT_EQ(plan.output_schema.num_columns(), 3u);
  PlannedQuery qualified = Plan("SELECT u.* FROM users u, orders o");
  EXPECT_EQ(qualified.output_schema.num_columns(), 3u);
}

TEST_F(PlannerTest, PredicatePushdownIntoSeqScan) {
  std::string plan = Explain("SELECT id FROM users WHERE age > 30");
  EXPECT_NE(plan.find("SeqScan(users, filtered)"), std::string::npos);
  // No separate Filter node remains.
  EXPECT_EQ(plan.find("Filter"), std::string::npos);
}

TEST_F(PlannerTest, IndexSelectionEquality) {
  MustExecute(&db_, "CREATE INDEX users_id ON users (id)");
  std::string plan = Explain("SELECT name FROM users WHERE id = 2");
  EXPECT_NE(plan.find("IndexScan(users.id)"), std::string::npos);
}

TEST_F(PlannerTest, IndexSelectionRange) {
  MustExecute(&db_, "CREATE INDEX users_age ON users (age)");
  std::string plan =
      Explain("SELECT name FROM users WHERE age >= 30 AND age < 40");
  EXPECT_NE(plan.find("IndexScan(users.age)"), std::string::npos);
}

TEST_F(PlannerTest, IndexSelectionFlippedOperands) {
  MustExecute(&db_, "CREATE INDEX users_age ON users (age)");
  std::string plan = Explain("SELECT name FROM users WHERE 30 < age");
  EXPECT_NE(plan.find("IndexScan(users.age)"), std::string::npos);
}

TEST_F(PlannerTest, NoIndexWithoutUsableBound) {
  MustExecute(&db_, "CREATE INDEX users_age ON users (age)");
  std::string plan = Explain("SELECT name FROM users WHERE age <> 30");
  EXPECT_EQ(plan.find("IndexScan"), std::string::npos);
}

TEST_F(PlannerTest, EquiJoinBecomesHashJoin) {
  std::string plan =
      Explain("SELECT name, amount FROM users, orders WHERE id = uid");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos);
}

TEST_F(PlannerTest, ExplicitJoinSyntax) {
  std::string plan = Explain(
      "SELECT name, amount FROM users JOIN orders ON users.id = orders.uid");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos);
}

TEST_F(PlannerTest, NonEquiJoinFallsBackToNestedLoop) {
  std::string plan =
      Explain("SELECT name FROM users, orders WHERE id < uid");
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos);
}

TEST_F(PlannerTest, SingleTablePredicatePushedBelowJoin) {
  std::string plan = Explain(
      "SELECT name FROM users, orders WHERE id = uid AND age > 28");
  // The age predicate lands in the users scan, not above the join.
  EXPECT_NE(plan.find("SeqScan(users, filtered)"), std::string::npos);
}

TEST_F(PlannerTest, AggregatePlanShape) {
  std::string plan = Explain(
      "SELECT name, count(*) FROM users GROUP BY name HAVING count(*) > 0");
  EXPECT_NE(plan.find("HashAggregate(groups=1, aggs=1)"), std::string::npos);
  EXPECT_NE(plan.find("Filter"), std::string::npos);  // HAVING
}

TEST_F(PlannerTest, GroupByOrdinalAndAlias) {
  EXPECT_NE(Plan("SELECT name, count(*) FROM users GROUP BY 1").root,
            nullptr);
  EXPECT_NE(Plan("SELECT age % 10 AS bucket, count(*) FROM users "
                 "GROUP BY bucket")
                .root,
            nullptr);
}

TEST_F(PlannerTest, OrderByVariants) {
  EXPECT_NE(Plan("SELECT name FROM users ORDER BY 1").root, nullptr);
  EXPECT_NE(Plan("SELECT name AS n FROM users ORDER BY n DESC").root,
            nullptr);
  // Hidden sort column: ORDER BY something not in the select list.
  std::string plan = Explain("SELECT name FROM users ORDER BY age");
  EXPECT_NE(plan.find("Sort"), std::string::npos);
  PlannedQuery hidden = Plan("SELECT name FROM users ORDER BY age");
  EXPECT_EQ(hidden.output_schema.num_columns(), 1u);  // hidden col stripped
}

TEST_F(PlannerTest, OrderByOrdinalOutOfRange) {
  Status s = PlanError("SELECT name FROM users ORDER BY 5");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(PlannerTest, DistinctWithNonSelectOrderByRejected) {
  Status s = PlanError("SELECT DISTINCT name FROM users ORDER BY age");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(PlannerTest, StreamRequiresWindow) {
  Status s = PlanError("SELECT v FROM events");
  EXPECT_NE(s.message().find("window"), std::string::npos);
}

TEST_F(PlannerTest, WindowOnTableRejected) {
  Status s = PlanError("SELECT id FROM users <VISIBLE '1 minute'>");
  EXPECT_NE(s.message().find("streams"), std::string::npos);
}

TEST_F(PlannerTest, StreamLeafDiscovered) {
  PlannedQuery plan =
      Plan("SELECT v, count(*) FROM events <VISIBLE '1 minute'> GROUP BY v");
  ASSERT_TRUE(plan.is_continuous());
  EXPECT_EQ(plan.stream_leaves[0].stream_name, "events");
  EXPECT_NE(plan.stream_leaves[0].buffer, nullptr);
}

TEST_F(PlannerTest, StreamLeafThroughSubquery) {
  PlannedQuery plan = Plan(
      "SELECT s.v FROM (SELECT v FROM events <VISIBLE '1 minute'>) s");
  EXPECT_TRUE(plan.is_continuous());
}

TEST_F(PlannerTest, StreamStreamJoinRejected) {
  Status s = PlanError(
      "SELECT a.v FROM events <VISIBLE '1 minute'> a, "
      "events <VISIBLE '1 minute'> b");
  EXPECT_EQ(s.code(), StatusCode::kNotImplemented);
}

TEST_F(PlannerTest, ViewExpansion) {
  MustExecute(&db_, "CREATE VIEW adults AS SELECT * FROM users WHERE age >= 30");
  PlannedQuery plan = Plan("SELECT name FROM adults");
  EXPECT_EQ(plan.output_schema.num_columns(), 1u);
}

TEST_F(PlannerTest, MissingRelation) {
  Status s = PlanError("SELECT x FROM nowhere");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(PlannerTest, UnknownColumn) {
  Status s = PlanError("SELECT missing_col FROM users");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(PlannerTest, UnionBranchArityChecked) {
  Status s = PlanError("SELECT id FROM users UNION ALL SELECT id, age FROM users");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(PlannerTest, FromlessSelect) {
  PlannedQuery plan = Plan("SELECT 1 + 1");
  ExecContext ctx;
  storage::TransactionManager txns;
  ctx.txns = &txns;
  auto rows = CollectRows(plan.root.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 2);
}

TEST_F(PlannerTest, NonGroupedColumnWithAggregateRejected) {
  Status s = PlanError("SELECT name, count(*) FROM users");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

}  // namespace
}  // namespace streamrel::exec
