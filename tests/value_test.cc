#include "common/value.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace streamrel {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, FactoryTypes) {
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int64(7).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::Timestamp(10).type(), DataType::kTimestamp);
  EXPECT_EQ(Value::Interval(10).type(), DataType::kInterval);
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(3).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int64(1).Compare(Value::Double(1.0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
}

TEST(ValueTest, NullComparesLowest) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_GT(Value::Int64(-100).Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_EQ(Value::String("ab").Hash(), Value::String("ab").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
}

TEST(ValueTest, CastIntToDouble) {
  auto r = Value::Int64(3).CastTo(DataType::kDouble);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 3.0);
}

TEST(ValueTest, CastStringToInt) {
  auto r = Value::String("123").CastTo(DataType::kInt64);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt64(), 123);
  EXPECT_FALSE(Value::String("12x").CastTo(DataType::kInt64).ok());
}

TEST(ValueTest, CastStringToInterval) {
  auto r = Value::String("1 week").CastTo(DataType::kInterval);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsIntervalMicros(), kMicrosPerWeek);
}

TEST(ValueTest, CastNullIsNull) {
  auto r = Value::Null().CastTo(DataType::kInt64);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
}

TEST(ValueTest, CastToStringRoundTrip) {
  auto r = Value::Int64(-5).CastTo(DataType::kString);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "-5");
}

TEST(ValueTest, SerializeRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),           Value::Bool(true),
      Value::Int64(-123456),   Value::Double(3.25),
      Value::String("hello'"), Value::Timestamp(1230000000000000),
      Value::Interval(-5000),
  };
  std::string buf;
  for (const Value& v : values) v.Serialize(&buf);
  size_t offset = 0;
  for (const Value& expected : values) {
    auto r = Value::Deserialize(buf, &offset);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->type(), expected.type());
    EXPECT_EQ(r->Compare(expected), 0) << expected.ToString();
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(ValueTest, DeserializeTruncated) {
  std::string buf;
  Value::Int64(7).Serialize(&buf);
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  EXPECT_FALSE(Value::Deserialize(buf, &offset).ok());
}

TEST(ValueArithmeticTest, IntAdd) {
  auto r = ValueAdd(Value::Int64(2), Value::Int64(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt64(), 5);
  EXPECT_EQ(r->type(), DataType::kInt64);
}

TEST(ValueArithmeticTest, MixedAddPromotesToDouble) {
  auto r = ValueAdd(Value::Int64(2), Value::Double(0.5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(r->AsDouble(), 2.5);
}

TEST(ValueArithmeticTest, NullPropagates) {
  EXPECT_TRUE(ValueAdd(Value::Null(), Value::Int64(1))->is_null());
  EXPECT_TRUE(ValueMul(Value::Int64(1), Value::Null())->is_null());
}

TEST(ValueArithmeticTest, DivisionByZero) {
  EXPECT_FALSE(ValueDiv(Value::Int64(1), Value::Int64(0)).ok());
  EXPECT_FALSE(ValueDiv(Value::Double(1), Value::Double(0)).ok());
  EXPECT_FALSE(ValueMod(Value::Int64(1), Value::Int64(0)).ok());
}

TEST(ValueArithmeticTest, IntegerDivisionTruncates) {
  auto r = ValueDiv(Value::Int64(7), Value::Int64(2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt64(), 3);
}

TEST(ValueArithmeticTest, TimestampPlusInterval) {
  auto r = ValueAdd(Value::Timestamp(100), Value::Interval(50));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kTimestamp);
  EXPECT_EQ(r->AsTimestampMicros(), 150);
}

TEST(ValueArithmeticTest, TimestampMinusTimestampIsInterval) {
  auto r = ValueSub(Value::Timestamp(100), Value::Timestamp(30));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kInterval);
  EXPECT_EQ(r->AsIntervalMicros(), 70);
}

TEST(ValueArithmeticTest, TimestampMinusInterval) {
  auto r = ValueSub(Value::Timestamp(100), Value::Interval(40));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kTimestamp);
  EXPECT_EQ(r->AsTimestampMicros(), 60);
}

TEST(ValueArithmeticTest, IntervalTimesNumber) {
  auto r = ValueMul(Value::Interval(100), Value::Int64(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type(), DataType::kInterval);
  EXPECT_EQ(r->AsIntervalMicros(), 300);
}

TEST(ValueArithmeticTest, StringConcatViaAdd) {
  auto r = ValueAdd(Value::String("a"), Value::String("b"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "ab");
}

TEST(ValueArithmeticTest, IncompatibleTypesError) {
  EXPECT_FALSE(ValueAdd(Value::Bool(true), Value::String("x")).ok());
  EXPECT_FALSE(ValueSub(Value::String("a"), Value::String("b")).ok());
}

}  // namespace
}  // namespace streamrel
