#include "stream/continuous_query.h"

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

/// Fixture: a url_stream plus helpers to drive it and capture CQ output.
class ContinuousQueryTest : public ::testing::Test {
 protected:
  ContinuousQueryTest() {
    MustExecute(&db_,
                "CREATE STREAM url_stream (url varchar, "
                "atime timestamp CQTIME USER, bytes bigint)");
  }

  ContinuousQuery* MustCreateCq(const std::string& name,
                                const std::string& sql,
                                bool allow_shared = true) {
    auto r = db_.CreateContinuousQuery(name, sql, allow_shared);
    EXPECT_TRUE(r.ok()) << sql << "\n -> " << r.status().ToString();
    return r.ok() ? *r : nullptr;
  }

  void Send(const std::string& url, int64_t ts, int64_t bytes = 100) {
    ASSERT_TRUE(db_.Ingest("url_stream",
                           {Row{Value::String(url), Value::Timestamp(ts),
                                Value::Int64(bytes)}})
                    .ok());
  }

  engine::Database db_;
  CqCapture capture_;
};

TEST_F(ContinuousQueryTest, SimpleAggregateUsesSharedPath) {
  ContinuousQuery* cq = MustCreateCq(
      "counts",
      "SELECT url, count(*) FROM url_stream <VISIBLE '1 minute'> GROUP BY "
      "url");
  ASSERT_NE(cq, nullptr);
  EXPECT_TRUE(cq->is_shared());
  cq->AddCallback(capture_.Callback());

  Send("/a", 10 * kSec);
  Send("/a", 20 * kSec);
  Send("/b", 30 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());

  ASSERT_EQ(capture_.batches.size(), 1u);
  EXPECT_EQ(capture_.batches[0].close, kMin);
  EXPECT_EQ(capture_.batches[0].rows.size(), 2u);
}

TEST_F(ContinuousQueryTest, GenericPathWhenSharedDisabled) {
  ContinuousQuery* cq = MustCreateCq(
      "counts_generic",
      "SELECT url, count(*) FROM url_stream <VISIBLE '1 minute'> GROUP BY "
      "url",
      /*allow_shared=*/false);
  ASSERT_NE(cq, nullptr);
  EXPECT_FALSE(cq->is_shared());
}

TEST_F(ContinuousQueryTest, SharedAndGenericAgree) {
  const std::string sql =
      "SELECT url, count(*) AS c, sum(bytes) AS s FROM "
      "url_stream <VISIBLE '2 minutes' ADVANCE '1 minute'> "
      "GROUP BY url ORDER BY c DESC, url";
  ContinuousQuery* shared = MustCreateCq("shared", sql, true);
  ContinuousQuery* generic = MustCreateCq("generic", sql, false);
  ASSERT_TRUE(shared->is_shared());
  ASSERT_FALSE(generic->is_shared());
  CqCapture cap_shared, cap_generic;
  shared->AddCallback(cap_shared.Callback());
  generic->AddCallback(cap_generic.Callback());

  int64_t ts = 0;
  const char* urls[] = {"/a", "/b", "/c", "/a", "/b", "/a"};
  for (int i = 0; i < 240; ++i) {
    ts += 997000;  // ~1s, deliberately not aligned
    Send(urls[i % 6], ts, (i * 13) % 100);
  }
  ASSERT_TRUE(db_.AdvanceTime("url_stream", ts + 2 * kMin).ok());

  ASSERT_EQ(cap_shared.batches.size(), cap_generic.batches.size());
  for (size_t i = 0; i < cap_shared.batches.size(); ++i) {
    EXPECT_EQ(cap_shared.batches[i].close, cap_generic.batches[i].close);
    ASSERT_EQ(cap_shared.batches[i].rows.size(),
              cap_generic.batches[i].rows.size())
        << "window " << i;
    for (size_t j = 0; j < cap_shared.batches[i].rows.size(); ++j) {
      EXPECT_EQ(RowToString(cap_shared.batches[i].rows[j]),
                RowToString(cap_generic.batches[i].rows[j]));
    }
  }
}

TEST_F(ContinuousQueryTest, TopKWithOrderLimit) {
  ContinuousQuery* cq = MustCreateCq(
      "topk",
      "SELECT url, count(*) url_count FROM url_stream <VISIBLE '1 minute'> "
      "GROUP BY url ORDER BY url_count DESC LIMIT 2");
  cq->AddCallback(capture_.Callback());
  for (int i = 0; i < 5; ++i) Send("/hot", (i + 1) * kSec);
  for (int i = 0; i < 3; ++i) Send("/warm", (10 + i) * kSec);
  Send("/cold", 20 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  const auto& rows = capture_.batches[0].rows;
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "/hot");
  EXPECT_EQ(rows[0][1].AsInt64(), 5);
  EXPECT_EQ(rows[1][0].AsString(), "/warm");
}

TEST_F(ContinuousQueryTest, HavingFilter) {
  ContinuousQuery* cq = MustCreateCq(
      "busy",
      "SELECT url, count(*) FROM url_stream <VISIBLE '1 minute'> "
      "GROUP BY url HAVING count(*) >= 2");
  cq->AddCallback(capture_.Callback());
  Send("/a", 1 * kSec);
  Send("/a", 2 * kSec);
  Send("/b", 3 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  ASSERT_EQ(capture_.batches[0].rows.size(), 1u);
  EXPECT_EQ(capture_.batches[0].rows[0][0].AsString(), "/a");
}

TEST_F(ContinuousQueryTest, WhereFilterPreAggregation) {
  ContinuousQuery* cq = MustCreateCq(
      "big_only",
      "SELECT count(*) FROM url_stream <VISIBLE '1 minute'> "
      "WHERE bytes > 500");
  cq->AddCallback(capture_.Callback());
  Send("/a", 1 * kSec, 1000);
  Send("/a", 2 * kSec, 10);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  EXPECT_EQ(capture_.batches[0].rows[0][0].AsInt64(), 1);
}

TEST_F(ContinuousQueryTest, CqCloseColumn) {
  ContinuousQuery* cq = MustCreateCq(
      "with_close",
      "SELECT count(*), cq_close(*) FROM url_stream <VISIBLE '1 minute'>");
  cq->AddCallback(capture_.Callback());
  Send("/a", 1 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", 2 * kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 2u);
  EXPECT_EQ(capture_.batches[0].rows[0][1].AsTimestampMicros(), kMin);
  EXPECT_EQ(capture_.batches[1].rows[0][1].AsTimestampMicros(), 2 * kMin);
  // Empty window still emits the scalar aggregate row with count 0.
  EXPECT_EQ(capture_.batches[1].rows[0][0].AsInt64(), 0);
}

TEST_F(ContinuousQueryTest, NonAggregateCqIsGeneric) {
  ContinuousQuery* cq = MustCreateCq(
      "raw_pass",
      "SELECT url, bytes FROM url_stream <VISIBLE '1 minute'> "
      "WHERE bytes > 50");
  EXPECT_FALSE(cq->is_shared());
  cq->AddCallback(capture_.Callback());
  Send("/a", 1 * kSec, 100);
  Send("/b", 2 * kSec, 10);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  ASSERT_EQ(capture_.batches[0].rows.size(), 1u);
  EXPECT_EQ(capture_.batches[0].rows[0][0].AsString(), "/a");
}

TEST_F(ContinuousQueryTest, RowWindowCqIsGeneric) {
  ContinuousQuery* cq = MustCreateCq(
      "per_100",
      "SELECT count(*) FROM url_stream <VISIBLE 4 ROWS ADVANCE 4 ROWS>");
  EXPECT_FALSE(cq->is_shared());
  cq->AddCallback(capture_.Callback());
  for (int i = 1; i <= 8; ++i) Send("/a", i * kSec);
  ASSERT_EQ(capture_.batches.size(), 2u);
  EXPECT_EQ(capture_.batches[0].rows[0][0].AsInt64(), 4);
}

TEST_F(ContinuousQueryTest, SnapshotQueryRejected) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  auto r = db_.CreateContinuousQuery("nope", "SELECT a FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ContinuousQueryTest, EmitWatermarkSuppressesDelivery) {
  ContinuousQuery* cq = MustCreateCq(
      "suppressed",
      "SELECT count(*) FROM url_stream <VISIBLE '1 minute'>");
  cq->AddCallback(capture_.Callback());
  cq->SetEmitWatermark(2 * kMin);
  Send("/a", 1 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", 3 * kMin).ok());
  // Windows at 1min and 2min evaluated but suppressed; only 3min delivered.
  ASSERT_EQ(capture_.batches.size(), 1u);
  EXPECT_EQ(capture_.batches[0].close, 3 * kMin);
  EXPECT_EQ(cq->windows_evaluated(), 3);
}

TEST_F(ContinuousQueryTest, SharingAcrossCqs) {
  ContinuousQuery* a = MustCreateCq(
      "m1",
      "SELECT url, count(*) FROM url_stream <VISIBLE '1 minute'> GROUP BY "
      "url");
  ContinuousQuery* b = MustCreateCq(
      "m2",
      "SELECT url, sum(bytes), count(*) FROM url_stream "
      "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url");
  ASSERT_TRUE(a->is_shared());
  ASSERT_TRUE(b->is_shared());
  // Same (stream, slice=1min, filter, group) signature: one pipeline.
  EXPECT_EQ(db_.runtime(), db_.runtime());  // both registered in runtime
  CqCapture cap_a, cap_b;
  a->AddCallback(cap_a.Callback());
  b->AddCallback(cap_b.Callback());
  for (int m = 0; m < 6; ++m) {
    Send("/x", m * kMin + kSec, 10);
  }
  ASSERT_TRUE(db_.AdvanceTime("url_stream", 6 * kMin).ok());
  ASSERT_EQ(cap_a.batches.size(), 6u);
  ASSERT_EQ(cap_b.batches.size(), 6u);
  // a sees 1 row/min; b's 5-minute window at close=6min covers minutes 1-5.
  EXPECT_EQ(cap_a.batches[5].rows[0][1].AsInt64(), 1);
  EXPECT_EQ(cap_b.batches[5].rows[0][2].AsInt64(), 5);
  EXPECT_EQ(cap_b.batches[5].rows[0][1].AsInt64(), 50);
}

TEST_F(ContinuousQueryTest, OrderByExpressionOverAggregates) {
  // ORDER BY an expression combining aggregates (avg bytes per hit) —
  // exercises the shared path's post-aggregation sort keys.
  ContinuousQuery* cq = MustCreateCq(
      "rate",
      "SELECT url, sum(bytes) AS b, count(*) AS c FROM url_stream "
      "<VISIBLE '1 minute'> GROUP BY url ORDER BY sum(bytes) / count(*) "
      "DESC");
  ASSERT_TRUE(cq->is_shared());
  cq->AddCallback(capture_.Callback());
  Send("/low", 1 * kSec, 10);
  Send("/low", 2 * kSec, 10);
  Send("/high", 3 * kSec, 1000);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  ASSERT_EQ(capture_.batches[0].rows.size(), 2u);
  EXPECT_EQ(capture_.batches[0].rows[0][0].AsString(), "/high");
}

TEST_F(ContinuousQueryTest, DistinctCqUsesGenericPath) {
  ContinuousQuery* cq = MustCreateCq(
      "uniq",
      "SELECT DISTINCT url FROM url_stream <VISIBLE '1 minute'>");
  EXPECT_FALSE(cq->is_shared());
  cq->AddCallback(capture_.Callback());
  Send("/a", 1 * kSec);
  Send("/a", 2 * kSec);
  Send("/b", 3 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("url_stream", kMin).ok());
  ASSERT_EQ(capture_.batches[0].rows.size(), 2u);
}

TEST_F(ContinuousQueryTest, SumOfIntervalsAggregates) {
  // The value system's interval arithmetic flows through sum().
  MustExecute(&db_,
              "CREATE STREAM spans (d interval, ts timestamp CQTIME USER)");
  auto cq = db_.CreateContinuousQuery(
      "total_time", "SELECT sum(d) FROM spans <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  (*cq)->AddCallback(capture_.Callback());
  ASSERT_TRUE(db_.Ingest("spans", {Row{Value::Interval(30 * kSec),
                                       Value::Timestamp(kSec)},
                                   Row{Value::Interval(45 * kSec),
                                       Value::Timestamp(2 * kSec)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("spans", kMin).ok());
  ASSERT_EQ(capture_.batches.size(), 1u);
  EXPECT_EQ(capture_.batches[0].rows[0][0].AsIntervalMicros(), 75 * kSec);
}

TEST_F(ContinuousQueryTest, OutputSchemaNamed) {
  ContinuousQuery* cq = MustCreateCq(
      "named",
      "SELECT url, count(*) AS hits FROM url_stream <VISIBLE '1 minute'> "
      "GROUP BY url");
  ASSERT_EQ(cq->output_schema().num_columns(), 2u);
  EXPECT_EQ(cq->output_schema().column(0).name, "url");
  EXPECT_EQ(cq->output_schema().column(1).name, "hits");
}

}  // namespace
}  // namespace streamrel::stream
